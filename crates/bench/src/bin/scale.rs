//! `scale`: wall-clock client scaling of the event-driven server runtime.
//!
//! Unlike the figure binaries (simulated 1995 time), this measures *real*
//! elapsed time on the host. For each client count in 16/64/256/1024 the
//! same disjoint-working-set update workload runs three ways against a
//! fresh server whose log disk carries a real per-sync latency:
//!
//! * `threads` — thread-per-connection, direct server calls, group
//!   commit off: the paper-era baseline, one OS thread per client and
//!   one log sync per commit.
//! * `threads_gc` — thread-per-connection with leader/follower group
//!   commit: the decomposed server at its best.
//! * `reactor` — the event-driven runtime: 8 reactor workers, a small
//!   admission budget (so the 256/1024-client points exercise shedding),
//!   batched commit forces from the committer thread, and a handful of
//!   driver threads multiplexing every simulated client.
//!
//! The old 4-client decomposition comparison (global-mutex single-lock
//! server vs decomposed subsystems) is kept as two `legacy4` rows driven
//! by the same shared harness (`qs_bench::driver`).
//!
//! Results are written to `BENCH_scale.json` (see EXPERIMENTS.md):
//! throughput, mean commit-force batch, shed counts, and queue/lock wait
//! p99s per row.
//!
//! Flags:
//!   --smoke            tiny transaction counts and near-zero sync
//!                      latency: exercises the harness and JSON output
//!                      only, the numbers are not meaningful
//!   --validate <path>  parse a previously written BENCH_scale.json and
//!                      assert it covers every client count × mode;
//!                      exits non-zero on malformed or incomplete files
//!   --ckpt-interval-ms <n>
//!                      maintenance-on sweep: turn the background-flusher
//!                      knob on and take a fuzzy checkpoint every n ms
//!                      for the duration of every timed run, so the tail
//!                      latencies include checkpoints in flight. The JSON
//!                      schema is unchanged; without the flag the sweep
//!                      is byte-for-byte the default (knob-off) one

use qs_bench::driver::{
    assert_workload_applied, build_scale_server, drive_reactor, drive_threads, ScaleWorkload,
};
use qs_esm::{Reactor, RuntimeConfig, ServerConfig};
use qs_sim::{HardwareModel, JsonWriter, Meter};
use qs_trace::Tracer;
use qs_types::sync::Mutex;
use quickstore::SystemConfig;
use std::sync::Arc;
use std::time::Duration;

/// The sweep.
const CLIENT_COUNTS: &[usize] = &[16, 64, 256, 1024];
/// Reactor worker threads for every reactor row.
const REACTOR_WORKERS: usize = 8;
/// Driver threads multiplexing the simulated clients in reactor mode.
const DRIVER_THREADS: usize = 8;
/// Admission budget for the reactor rows — small enough that the
/// 256/1024-client points shed (exercising backpressure), large enough
/// that 16 clients never do.
const INFLIGHT_BUDGET: usize = 128;
/// Pool shards for every mode (the PR-3 decomposition).
const SHARDS: usize = 8;

struct ModeResult {
    name: String,
    clients: usize,
    txns: u64,
    wall: Duration,
    commit_batch_mean: f64,
    shed_budget: u64,
    shed_queue: u64,
    queue_wait_p99_ns: u64,
    lock_wait_p99_ns: u64,
}

impl ModeResult {
    fn throughput_tps(&self) -> f64 {
        self.txns as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

fn server_cfg(w: &ScaleWorkload, group_commit: bool) -> ServerConfig {
    // Scale measures the runtime, not recovery: every row runs the shared
    // Table 3 list's lead scheme (PD-ESM) rather than a hand-copied flavor.
    let flavor = SystemConfig::by_name("PD-ESM").expect("shared scheme list").flavor;
    ServerConfig::new(flavor)
        .with_pool_mb(32.0)
        .with_volume_pages((w.clients * w.pages_per_client * 2).max(1024))
        .with_log_mb(64.0)
        .with_pool_shards(SHARDS)
        .with_group_commit(group_commit)
}

fn bench_tracer() -> Arc<Tracer> {
    let tracer = Tracer::flight(Meter::new(), HardwareModel::paper_1995(), 256);
    tracer.set_lock_stats(true);
    tracer
}

/// p99 of one histogram, 0 when it was never recorded into.
fn p99(tracer: &Tracer, name: &str) -> u64 {
    tracer.histogram(name).map(|h| h.summary().p99).unwrap_or(0)
}

/// Worst subsystem-mutex wait tail (`lock_wait:*` histograms).
fn lock_wait_p99(tracer: &Tracer) -> u64 {
    tracer
        .summaries()
        .iter()
        .filter(|(name, _)| name.starts_with("lock_wait:"))
        .map(|(_, s)| s.p99)
        .max()
        .unwrap_or(0)
}

/// Run `f` with a checkpoint loop in flight when a `--ckpt-interval-ms`
/// interval is set: a control thread takes a (fuzzy — the knob is on
/// whenever an interval is) checkpoint every `interval` until `f`
/// returns. `None` runs `f` alone, unchanged.
fn with_checkpointer<T>(
    server: &Arc<qs_esm::Server>,
    interval: Option<Duration>,
    f: impl FnOnce() -> T,
) -> T {
    let Some(interval) = interval else { return f() };
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        s.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                server.checkpoint().expect("checkpoint in flight");
                std::thread::sleep(interval);
            }
        });
        let out = f();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        out
    })
}

/// One thread-per-connection row.
fn run_threads(
    w: &ScaleWorkload,
    group_commit: bool,
    name: String,
    ckpt: Option<Duration>,
) -> ModeResult {
    let tracer = bench_tracer();
    let cfg = server_cfg(w, group_commit).with_background_flusher(ckpt.is_some());
    let (server, sets) = build_scale_server(cfg, w, Arc::clone(&tracer));
    let wall =
        with_checkpointer(&server, ckpt, || drive_threads(&server, &sets, w.txns_per_client, None));
    assert_workload_applied(&server, &sets, w.txns_per_client);
    let (gc_calls, gc_forces) = server.group_commit_stats();
    ModeResult {
        name,
        clients: w.clients,
        txns: w.total_txns() as u64,
        wall,
        commit_batch_mean: if group_commit && gc_forces > 0 {
            gc_calls as f64 / gc_forces as f64
        } else {
            1.0
        },
        shed_budget: 0,
        shed_queue: 0,
        queue_wait_p99_ns: 0,
        lock_wait_p99_ns: lock_wait_p99(&tracer),
    }
}

/// One event-driven-runtime row.
fn run_reactor(w: &ScaleWorkload, name: String, ckpt: Option<Duration>) -> ModeResult {
    let tracer = bench_tracer();
    let cfg =
        server_cfg(w, false).with_background_flusher(ckpt.is_some()).with_runtime(RuntimeConfig {
            workers: REACTOR_WORKERS,
            inflight_budget: INFLIGHT_BUDGET,
            queue_depth_max: 4096,
            mailbox_depth: 16,
        });
    let (server, sets) = build_scale_server(cfg, w, Arc::clone(&tracer));
    let reactor = Reactor::start(&server);
    let wall = with_checkpointer(&server, ckpt, || {
        drive_reactor(&reactor, &sets, w.txns_per_client, DRIVER_THREADS)
    });
    let stats = reactor.stats();
    reactor.stop();
    if ckpt.is_some() {
        server.stop_flusher();
    }
    assert_workload_applied(&server, &sets, w.txns_per_client);
    assert_eq!(
        stats.commit_calls,
        w.total_txns() as u64,
        "every transaction must commit exactly once"
    );
    ModeResult {
        name,
        clients: w.clients,
        txns: w.total_txns() as u64,
        wall,
        commit_batch_mean: stats.commit_calls as f64 / stats.commit_forces.max(1) as f64,
        shed_budget: stats.shed_budget,
        shed_queue: stats.shed_queue,
        queue_wait_p99_ns: p99(&tracer, "runtime_queue_wait_ns"),
        lock_wait_p99_ns: lock_wait_p99(&tracer),
    }
}

/// The old 4-client decomposition comparison, now on the shared driver:
/// single-lock server (global mutex around every call) vs the decomposed
/// server.
fn run_legacy4(smoke: bool) -> Vec<ModeResult> {
    let w = ScaleWorkload {
        clients: 4,
        txns_per_client: if smoke { 8 } else { 40 },
        pages_per_client: 8,
        sync_latency: if smoke { Duration::from_micros(20) } else { Duration::from_micros(500) },
    };
    let mut out = Vec::new();

    let tracer = Tracer::disabled();
    let mut cfg = server_cfg(&w, false);
    cfg.pool_shards = 1;
    let (server, sets) = build_scale_server(cfg, &w, tracer);
    let global = Arc::new(Mutex::new(()));
    let wall = drive_threads(&server, &sets, w.txns_per_client, Some(&global));
    assert_workload_applied(&server, &sets, w.txns_per_client);
    out.push(ModeResult {
        name: "scale/legacy4/global_mutex".into(),
        clients: w.clients,
        txns: w.total_txns() as u64,
        wall,
        commit_batch_mean: 1.0,
        shed_budget: 0,
        shed_queue: 0,
        queue_wait_p99_ns: 0,
        lock_wait_p99_ns: 0,
    });

    out.push(run_threads(&w, true, "scale/legacy4/decomposed".into(), None));
    out
}

fn sweep_workload(clients: usize, smoke: bool) -> ScaleWorkload {
    let total = if smoke { 128 } else { 4096 };
    ScaleWorkload {
        clients,
        txns_per_client: (total / clients).max(2),
        pages_per_client: 2,
        sync_latency: if smoke { Duration::from_micros(20) } else { Duration::from_micros(300) },
    }
}

/// Every result name the harness emits, for `--validate`.
fn expected_names() -> Vec<String> {
    let mut names = Vec::new();
    for &c in CLIENT_COUNTS {
        for mode in ["threads", "threads_gc", "reactor"] {
            names.push(format!("scale/c{c}/{mode}"));
        }
    }
    names.push("scale/legacy4/global_mutex".into());
    names.push("scale/legacy4/decomposed".into());
    names
}

fn render_json(results: &[ModeResult], smoke: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("benchmark", "scale")
        .field_str("build", if cfg!(debug_assertions) { "debug" } else { "release" })
        .key("smoke")
        .bool(smoke)
        .key("results")
        .begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", &r.name)
            .field_u64("clients", r.clients as u64)
            .field_u64("txns", r.txns)
            .field_u64("wall_ns", r.wall.as_nanos() as u64)
            .field_f64("throughput_tps", r.throughput_tps())
            .field_f64("commit_batch_mean", r.commit_batch_mean)
            .field_u64("shed_budget", r.shed_budget)
            .field_u64("shed_queue", r.shed_queue)
            .field_u64("queue_wait_p99_ns", r.queue_wait_p99_ns)
            .field_u64("lock_wait_p99_ns", r.lock_wait_p99_ns)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qs_bench::jsoncheck::check_json(&text)
        .map_err(|at| format!("{path}: malformed JSON at byte {at}"))?;
    let names = expected_names();
    let missing: Vec<&String> =
        names.iter().filter(|name| !text.contains(&format!("\"name\":\"{name}\""))).collect();
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("{path}: missing benchmark results: {missing:?}"))
    }
}

fn print_row(r: &ModeResult) {
    println!(
        "{:<26} {:>9.1} tps  wall {:>9.1?}  batch {:>6.2}  shed {:>6}  q_p99 {:>9}ns",
        r.name,
        r.throughput_tps(),
        r.wall,
        r.commit_batch_mean,
        r.shed_budget + r.shed_queue,
        r.queue_wait_p99_ns,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("usage: scale --validate <BENCH_scale.json>");
            std::process::exit(2);
        };
        match validate(path) {
            Ok(()) => {
                println!("{path}: ok ({} results covered)", expected_names().len());
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let ckpt = args.iter().position(|a| a == "--ckpt-interval-ms").map(|pos| {
        let ms: u64 = args.get(pos + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("usage: scale --ckpt-interval-ms <millis>");
            std::process::exit(2);
        });
        Duration::from_millis(ms.max(1))
    });
    println!(
        "qs-scale: client-scaling wall clock (real time, not simulated; build: {}{}{})",
        if cfg!(debug_assertions) { "DEBUG — use --release for real numbers" } else { "release" },
        if smoke { ", SMOKE — numbers not meaningful" } else { "" },
        match ckpt {
            Some(iv) => format!(", maintenance ON: fuzzy checkpoint every {iv:?}"),
            None => String::new(),
        }
    );

    let mut results: Vec<ModeResult> = Vec::new();
    for &clients in CLIENT_COUNTS {
        let w = sweep_workload(clients, smoke);
        println!(
            "-- {clients} clients x {} txns x {} pages, log sync {:?} --",
            w.txns_per_client, w.pages_per_client, w.sync_latency
        );
        let threads = run_threads(&w, false, format!("scale/c{clients}/threads"), ckpt);
        print_row(&threads);
        let threads_gc = run_threads(&w, true, format!("scale/c{clients}/threads_gc"), ckpt);
        print_row(&threads_gc);
        let reactor = run_reactor(&w, format!("scale/c{clients}/reactor"), ckpt);
        print_row(&reactor);
        let speedup = threads.wall.as_secs_f64() / reactor.wall.as_secs_f64();
        println!("   reactor vs threads: {speedup:.2}x");
        results.extend([threads, threads_gc, reactor]);
    }

    println!("-- legacy 4-client decomposition comparison --");
    for r in run_legacy4(smoke) {
        print_row(&r);
        results.push(r);
    }

    let json = render_json(&results, smoke);
    std::fs::write("BENCH_scale.json", &json).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json ({} results)", results.len());
}
