//! `scale`: multi-client wall-clock scaling of the decomposed server.
//!
//! Unlike the figure binaries (simulated 1995 time), this measures *real*
//! elapsed time on the host: 4 clients with disjoint working sets run the
//! same update workload against
//!
//! 1. the single-lock baseline — one shard, group commit off, and one
//!    global mutex wrapped around every server call, which is exactly the
//!    pre-decomposition server's concurrency behavior (`Mutex<Inner>` held
//!    across everything, including the commit-path log sync); and
//! 2. the decomposed server — 8 pool shards, group commit on, subsystem
//!    locks, with lock-hold tracing enabled.
//!
//! The log medium carries a real per-sync latency, as a log disk does, so
//! holding a global lock across commit forces is as expensive as it was in
//! life. Reports the speedup (acceptance target: > 1.5x), the mean group-
//! commit batch size, and per-subsystem lock-hold tails. Prints to stdout
//! only — this binary never writes `results/`.

use qs_esm::{LockMode, RecoveryFlavor, Server, ServerConfig, StableParts};
use qs_sim::{HardwareModel, Meter};
use qs_storage::{MemDisk, Page, Volume};
use qs_trace::Tracer;
use qs_types::sync::Mutex;
use qs_types::{Lsn, PageId};
use qs_wal::{LogManager, LogRecord};
use std::sync::Arc;
use std::time::{Duration, Instant};

const CLIENTS: usize = 4;
const TXNS_PER_CLIENT: usize = 40;
const PAGES_PER_CLIENT: usize = 8;
/// What one log-disk sync costs in real time (a fast-for-1995 ~0.5 ms).
const SYNC_LATENCY: Duration = Duration::from_micros(500);

fn build_server(
    shards: usize,
    group: bool,
    tracer: Arc<Tracer>,
) -> (Arc<Server>, Vec<Vec<PageId>>) {
    let cfg = ServerConfig::new(RecoveryFlavor::EsmAries)
        .with_pool_mb(4.0)
        .with_volume_pages(1024)
        .with_log_mb(64.0)
        .with_pool_shards(shards)
        .with_group_commit(group);
    let parts = StableParts {
        data_media: Arc::new(MemDisk::new(Volume::required_bytes(cfg.volume_pages))),
        log_media: Arc::new(MemDisk::with_sync_latency(
            LogManager::required_bytes(cfg.log_bytes),
            SYNC_LATENCY,
        )),
        flight: None,
    };
    let server = Arc::new(Server::format_on_traced(parts, cfg, Meter::new(), tracer).unwrap());
    let pids = server.bulk_allocate(CLIENTS * PAGES_PER_CLIENT).unwrap();
    for &pid in &pids {
        let mut p = Page::new();
        p.insert(pid, &[0u8; 64]).unwrap();
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    let sets = pids.chunks(PAGES_PER_CLIENT).map(|c| c.to_vec()).collect();
    (server, sets)
}

/// One update transaction over `set`, optionally with every server call
/// under a global mutex (the single-lock baseline).
fn one_txn(server: &Server, set: &[PageId], val: u8, global: Option<&Mutex<()>>) {
    macro_rules! call {
        ($e:expr) => {{
            let _g = global.map(|m| m.lock());
            $e
        }};
    }
    let txn = call!(server.begin());
    for &pid in set {
        call!(server.lock_page(txn, pid, LockMode::X).unwrap());
        let mut page = call!(server.fetch_page(txn, pid).unwrap());
        page.object_mut(pid, 0).unwrap().fill(val);
        let rec = LogRecord::Update {
            txn,
            prev: Lsn::NULL,
            page: pid,
            slot: 0,
            offset: 0,
            before: vec![0u8; 64],
            after: vec![val; 64],
        };
        call!(server.receive_log_records(txn, vec![rec]).unwrap());
        call!(server.receive_dirty_page(txn, pid, page).unwrap());
    }
    call!(server.commit(txn).unwrap());
}

fn drive(server: &Arc<Server>, sets: &[Vec<PageId>], global: Option<&Arc<Mutex<()>>>) -> Duration {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (i, set) in sets.iter().enumerate() {
            let server = Arc::clone(server);
            let set = set.clone();
            let global = global.cloned();
            s.spawn(move || {
                for t in 0..TXNS_PER_CLIENT {
                    let val = ((i * 31 + t) % 251 + 1) as u8;
                    one_txn(&server, &set, val, global.as_deref());
                }
            });
        }
    });
    t0.elapsed()
}

fn main() {
    println!("qs-scale: multi-client wall-clock scaling (real time, not simulated)");
    println!(
        "  {CLIENTS} clients x {TXNS_PER_CLIENT} txns x {PAGES_PER_CLIENT} disjoint pages, log sync {SYNC_LATENCY:?}"
    );

    let (server, sets) = build_server(1, false, Tracer::disabled());
    let global = Arc::new(Mutex::new(()));
    let base = drive(&server, &sets, Some(&global));
    println!("  single-lock baseline : {:>10.1?}", base);

    let tracer = Tracer::flight(Meter::new(), HardwareModel::paper_1995(), 256);
    tracer.set_lock_stats(true);
    let (server, sets) = build_server(8, true, Arc::clone(&tracer));
    let dec = drive(&server, &sets, None);
    println!("  decomposed server    : {:>10.1?}", dec);

    let speedup = base.as_secs_f64() / dec.as_secs_f64();
    println!("  speedup              : {speedup:.2}x  (acceptance target > 1.5x)");

    let (calls, forces) = server.group_commit_stats();
    println!(
        "  group commit         : {calls} commit forces -> {forces} disk syncs (mean batch {:.2})",
        calls as f64 / forces.max(1) as f64
    );
    println!("  per-subsystem lock holds:");
    for (name, s) in tracer.summaries() {
        if let Some(sub) = name.strip_prefix("lock_hold:") {
            println!("    {:<12} n={:<7} p99={:>9}ns max={:>9}ns", sub, s.count, s.p99, s.max);
        }
    }
}
