//! Regenerates the paper's fig06_07 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig06_07() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
