//! Regenerates the paper's fig17_18 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig17_18() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
