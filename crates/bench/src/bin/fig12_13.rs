//! Regenerates the paper's fig12_13 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig12_13() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
