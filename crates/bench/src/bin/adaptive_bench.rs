//! `adaptive_bench`: per-transaction adaptive scheme election (§6g)
//! against every fixed scheme, on three OO7-style workloads.
//!
//! * `sparse` — T2A traversals: a handful of 8-byte updates scattered
//!   over many pages. The cheapest records are REDO-only logical ones.
//! * `dense`  — manual edits: striped rewrites covering ~60% of every
//!   manual-chunk page. Still fragmented enough that logical records
//!   undercut whole-page images.
//! * `mixed`  — a rotation of sparse traversals, dense edits, and bulk
//!   whole-manual rewrites (near-full pages, where a whole-page image is
//!   the compact format). No fixed scheme fits all three shapes; the
//!   elector picks per transaction.
//!
//! Costs are the *modeled* 1995-testbed demands (`HardwareModel`), the
//! same pricing every figure uses: counters from the measured window are
//! converted to seconds, so runs are deterministic and build-independent.
//! Log volume is the device truth — sequential log pages appended.
//!
//! Every run ends with a crash; the media must restart byte-identically
//! under the serial and the parallel (4-worker) engines.
//!
//! Results go to `BENCH_adaptive.json`. Acceptance (checked by
//! `--validate` on non-smoke files): on every workload adaptive is
//! within 1.05x of the best fixed scheme on log bytes and mean commit
//! cost, and on `mixed` the worst fixed scheme is >= 1.3x worse than
//! adaptive on both.
//!
//! Flags:
//!   --smoke            tiny database, few transactions: harness + JSON
//!                      shape only, ratios not meaningful
//!   --validate <path>  parse a previously written BENCH_adaptive.json
//!                      and (non-smoke) enforce the acceptance bars

use qs_esm::{ClientConn, Server, ServerConfig, StableParts};
use qs_oo7::{gen, params::DbSize, params::Oo7Params, traversal, T2Mode};
use qs_sim::{HardwareModel, JsonWriter, Meter};
use qs_storage::{MemDisk, StableMedia};
use qs_types::{ClientId, Oid, PAGE_SIZE};
use quickstore::{Store, SystemConfig};
use std::sync::Arc;

const FIXED: [&str; 4] = ["PD-ESM", "SD-ESM", "WPL", "PD-RLOG"];
const WORKLOADS: [&str; 3] = ["sparse", "dense", "mixed"];
const MAX_VS_BEST: f64 = 1.05;
const MIN_VS_WORST: f64 = 1.3;

/// Byte written in striped / bulk manual edits for transaction `i` —
/// always different from the previous round so diffs are real.
fn fill(i: usize) -> u8 {
    (i % 251) as u8 + 1
}

/// Dense: rewrite ~30% of every manual chunk in 160-byte stripes every
/// 512 bytes (a fragmented document edit). Fragmented but touching every
/// page, so the interesting fixed schemes all pay per page.
fn dense_txn(store: &mut Store, chunks: &[(Oid, usize)], i: usize) {
    store.begin().unwrap();
    for &(oid, len) in chunks {
        let mut off = 0;
        while off < len {
            let n = 160.min(len - off);
            store.modify(oid, off, &vec![fill(i); n]).unwrap();
            off += 512;
        }
    }
    store.commit().unwrap();
}

/// Bulk: replace the whole manual — every chunk rewritten end to end
/// (near-full pages; the whole-page image is the compact record here).
fn bulk_txn(store: &mut Store, chunks: &[(Oid, usize)], i: usize) {
    store.begin().unwrap();
    for &(oid, len) in chunks {
        store.modify(oid, 0, &vec![fill(i) ^ 0xA5; len]).unwrap();
    }
    store.commit().unwrap();
}

struct RunResult {
    name: String,
    txns: u64,
    log_bytes: u64,
    mean_commit_s: f64,
    elected: [u64; 4], // pd, sd, wpl, rlog (adaptive runs only)
    scheme_switches: u64,
}

fn image(media: &Arc<dyn StableMedia>) -> Vec<u8> {
    let mut buf = vec![0u8; media.len()];
    media.read_at(0, &mut buf).unwrap();
    buf
}

fn disk_from(bytes: &[u8]) -> Arc<dyn StableMedia> {
    let d = MemDisk::new(bytes.len());
    d.write_at(0, bytes).unwrap();
    Arc::new(d)
}

fn config_for(scheme: &str) -> SystemConfig {
    let cfg = if scheme == "ADAPT" {
        SystemConfig::adaptive()
    } else {
        SystemConfig::by_name(scheme).expect("fixed scheme name")
    };
    // 16 MB client, 6 MB recovery buffer: T2A's ~500-page write set fits,
    // so no scheme pays overflow records and the comparison is clean.
    cfg.with_memory(16.0, 6.0)
}

fn server_cfg(scheme: &str, smoke: bool) -> ServerConfig {
    let flavor = config_for(scheme).flavor;
    let (pool, volume, log) = if smoke { (8.0, 2048, 32.0) } else { (36.0, 6000, 128.0) };
    ServerConfig::new(flavor).with_pool_mb(pool).with_volume_pages(volume).with_log_mb(log)
}

/// Crash the server, then require the serial and the 4-worker parallel
/// restart to recover byte-identical media.
fn assert_restart_equivalence(server: Server, scheme: &str, smoke: bool, run: &str) {
    let parts = server.crash();
    let (data, log) = (image(&parts.data_media), image(&parts.log_media));
    let mut images = Vec::new();
    for workers in [1usize, 4] {
        let parts =
            StableParts { data_media: disk_from(&data), log_media: disk_from(&log), flight: None };
        let scfg = server_cfg(scheme, smoke).with_redo_workers(workers);
        let restarted = Server::restart(parts, scfg, Meter::new()).expect("restart");
        assert_eq!(restarted.active_txns(), 0, "{run}: transactions leaked through restart");
        restarted.quiesce().unwrap();
        let p = restarted.crash();
        images.push((image(&p.data_media), image(&p.log_media)));
    }
    assert_eq!(images[0], images[1], "{run}: parallel restart diverged from serial");
}

/// One (workload, scheme) run: warm up, measure, model the demands,
/// crash, and check restart equivalence.
fn run_one(workload: &str, scheme: &str, smoke: bool) -> RunResult {
    let cfg = config_for(scheme);
    let meter = Meter::new();
    let server = Arc::new(Server::format(server_cfg(scheme, smoke), Arc::clone(&meter)).unwrap());
    let mut params = if smoke { Oo7Params::tiny() } else { Oo7Params::of(DbSize::Small) };
    params.num_modules = 1;
    let db = gen::generate(&server, &params, 1995).unwrap();
    let module = &db.modules[0];
    let client = ClientConn::new(
        ClientId(0),
        Arc::clone(&server),
        cfg.client_pool_pages(),
        Arc::clone(&meter),
    );
    let mut store = Store::new(client, cfg.clone()).unwrap();
    let chunks: Vec<(Oid, usize)> = module
        .manual_chunks
        .iter()
        .map(|&oid| {
            store.begin().unwrap();
            let len = store.object_len(oid).unwrap();
            store.commit().unwrap();
            (oid, len)
        })
        .collect();

    let txn = |store: &mut Store, i: usize| match workload {
        "sparse" => {
            store.begin().unwrap();
            traversal::t2(store, module, T2Mode::A).unwrap();
            store.commit().unwrap();
        }
        "dense" => dense_txn(store, &chunks, i),
        // sparse, dense, sparse, bulk — the rotation no fixed scheme fits.
        "mixed" => match i % 4 {
            3 => bulk_txn(store, &chunks, i),
            1 => dense_txn(store, &chunks, i),
            _ => {
                store.begin().unwrap();
                traversal::t2(store, module, T2Mode::A).unwrap();
                store.commit().unwrap();
            }
        },
        other => panic!("unknown workload {other}"),
    };

    let (warmup, measure) = match (workload, smoke) {
        ("mixed", false) => (4, 8),
        ("mixed", true) => (4, 4),
        (_, false) => (1, 4),
        (_, true) => (1, 2),
    };
    for i in 0..warmup {
        txn(&mut store, i);
    }
    let before = meter.snapshot();
    for i in 0..measure {
        txn(&mut store, warmup + i);
    }
    let window = meter.snapshot().since(&before);
    drop(store);

    let hw = HardwareModel::paper_1995();
    let demand = window.per_txn_demand(&hw, measure as u64);
    let name = format!("{workload}/{scheme}");
    let server = Arc::try_unwrap(server).ok().expect("sole owner");
    assert_restart_equivalence(server, scheme, smoke, &name);
    RunResult {
        name,
        txns: measure as u64,
        log_bytes: window.log_pages_written * PAGE_SIZE as u64,
        mean_commit_s: demand.total(),
        elected: [window.txns_pd, window.txns_sd, window.txns_wpl, window.txns_rlog],
        scheme_switches: window.scheme_switches,
    }
}

/// The acceptance ratios for one workload: adaptive vs the best fixed
/// scheme (both metrics), and — used on `mixed` — the worst fixed scheme
/// vs adaptive.
struct Bars {
    adapt_log: f64,
    adapt_commit: f64,
    worst_log: f64,
    worst_commit: f64,
}

fn bars(fixed: &[&RunResult], adapt: &RunResult) -> Bars {
    let logs: Vec<f64> = fixed.iter().map(|r| r.log_bytes as f64).collect();
    let commits: Vec<f64> = fixed.iter().map(|r| r.mean_commit_s).collect();
    let min = |v: &[f64]| v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
    Bars {
        adapt_log: adapt.log_bytes as f64 / min(&logs),
        adapt_commit: adapt.mean_commit_s / min(&commits),
        worst_log: max(&logs) / adapt.log_bytes as f64,
        worst_commit: max(&commits) / adapt.mean_commit_s,
    }
}

fn render_json(results: &[RunResult], all_bars: &[(String, Bars)], smoke: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("benchmark", "adaptive")
        .field_str("build", if cfg!(debug_assertions) { "debug" } else { "release" })
        .key("smoke")
        .bool(smoke);
    for (wl, b) in all_bars {
        w.field_f64(&format!("{wl}_adapt_vs_best_log"), b.adapt_log)
            .field_f64(&format!("{wl}_adapt_vs_best_commit"), b.adapt_commit)
            .field_f64(&format!("{wl}_worst_vs_adapt_log"), b.worst_log)
            .field_f64(&format!("{wl}_worst_vs_adapt_commit"), b.worst_commit);
    }
    w.key("results").begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", &r.name)
            .field_u64("txns", r.txns)
            .field_u64("log_bytes", r.log_bytes)
            .field_f64("mean_commit_s", r.mean_commit_s)
            .field_u64("txns_pd", r.elected[0])
            .field_u64("txns_sd", r.elected[1])
            .field_u64("txns_wpl", r.elected[2])
            .field_u64("txns_rlog", r.elected[3])
            .field_u64("scheme_switches", r.scheme_switches)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

fn expected_names() -> Vec<String> {
    let mut names = Vec::new();
    for wl in WORKLOADS {
        for s in FIXED.iter().copied().chain(["ADAPT"]) {
            names.push(format!("{wl}/{s}"));
        }
    }
    names
}

fn json_f64(text: &str, key: &str) -> Option<f64> {
    text.split(&format!("\"{key}\":"))
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next()?.trim().parse::<f64>().ok())
}

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qs_bench::jsoncheck::check_json(&text)
        .map_err(|at| format!("{path}: malformed JSON at byte {at}"))?;
    let missing: Vec<String> = expected_names()
        .into_iter()
        .filter(|name| !text.contains(&format!("\"name\":\"{name}\"")))
        .collect();
    if !missing.is_empty() {
        return Err(format!("{path}: missing benchmark results: {missing:?}"));
    }
    let mut ratios = Vec::new();
    for wl in WORKLOADS {
        for metric in ["log", "commit"] {
            let key = format!("{wl}_adapt_vs_best_{metric}");
            let v = json_f64(&text, &key).ok_or(format!("{path}: no parseable {key}"))?;
            ratios.push((key, v, MAX_VS_BEST, true));
        }
    }
    for metric in ["log", "commit"] {
        let key = format!("mixed_worst_vs_adapt_{metric}");
        let v = json_f64(&text, &key).ok_or(format!("{path}: no parseable {key}"))?;
        ratios.push((key, v, MIN_VS_WORST, false));
    }
    if text.contains("\"smoke\":true") {
        println!("{path}: smoke file, skipping the acceptance bars");
        return Ok(());
    }
    for (key, v, bar, upper) in ratios {
        let ok = if upper { v <= bar } else { v >= bar };
        if !ok {
            return Err(format!(
                "{path}: {key} = {v:.3} misses the bar ({} {bar})",
                if upper { "<=" } else { ">=" }
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("usage: adaptive_bench --validate <BENCH_adaptive.json>");
            std::process::exit(2);
        };
        match validate(path) {
            Ok(()) => {
                println!("{path}: ok ({} results covered)", expected_names().len());
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    println!(
        "qs-adaptive: per-transaction scheme election vs the fixed schemes{}",
        if smoke { " (SMOKE — ratios not meaningful)" } else { "" }
    );

    let mut results: Vec<RunResult> = Vec::new();
    let mut all_bars = Vec::new();
    for wl in WORKLOADS {
        for scheme in FIXED.iter().copied().chain(["ADAPT"]) {
            let r = run_one(wl, scheme, smoke);
            println!(
                "{:<16} {:>4} txns  log {:>10} B  commit {:>9.1} ms  [pd {} sd {} wpl {} rlog {}, {} switches]",
                r.name,
                r.txns,
                r.log_bytes,
                r.mean_commit_s * 1e3,
                r.elected[0],
                r.elected[1],
                r.elected[2],
                r.elected[3],
                r.scheme_switches,
            );
            results.push(r);
        }
        let fixed: Vec<&RunResult> = results.iter().rev().skip(1).take(FIXED.len()).rev().collect();
        let adapt = results.last().expect("just pushed");
        let b = bars(&fixed, adapt);
        println!(
            "   {wl}: adaptive vs best fixed — log {:.3}x commit {:.3}x (bar <= {MAX_VS_BEST}); worst vs adaptive — log {:.2}x commit {:.2}x{}",
            b.adapt_log,
            b.adapt_commit,
            b.worst_log,
            b.worst_commit,
            if wl == "mixed" { " (bar >= 1.3)" } else { "" },
        );
        all_bars.push((wl.to_string(), b));
    }

    if !smoke {
        // The elector must actually mix formats on the mixed workload —
        // otherwise this bench degenerates into a fixed-scheme rerun.
        let adapt_mixed = results.iter().find(|r| r.name == "mixed/ADAPT").expect("present");
        let kinds = adapt_mixed.elected.iter().filter(|&&n| n > 0).count();
        assert!(kinds >= 2, "mixed/ADAPT elected only {kinds} scheme kind(s)");
        assert!(adapt_mixed.scheme_switches > 0, "mixed/ADAPT never switched schemes");
        for (wl, b) in &all_bars {
            if b.adapt_log > MAX_VS_BEST || b.adapt_commit > MAX_VS_BEST {
                eprintln!("WARNING: {wl}: adaptive misses the 1.05x bar vs the best fixed scheme");
            }
        }
    }

    let json = render_json(&results, &all_bars, smoke);
    std::fs::write("BENCH_adaptive.json", &json).expect("write BENCH_adaptive.json");
    println!("wrote BENCH_adaptive.json ({} results)", results.len());
}
