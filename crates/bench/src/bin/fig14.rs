//! Regenerates the paper's fig14 output. See DESIGN.md §4.

fn main() {
    match qs_bench::figures::fig14() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
