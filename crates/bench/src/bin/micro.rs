//! Micro-benchmarks for the core mechanisms the paper's analysis hinges
//! on: the region-combining diff, the AVL descriptor index, buffer-pool
//! replacement, log append/force, lock acquisition, and the per-update
//! cost of hardware vs software detection.
//!
//! A plain timing harness (`cargo run --release --bin micro`), replacing
//! the former Criterion bench so the perf trajectory can be tracked with
//! zero external crates: each benchmark runs a warmup, then N measured
//! batches, and reports the median, minimum, and maximum per-iteration
//! wall-clock time. Results are also written to `BENCH_micro.json`
//! (see EXPERIMENTS.md for the format).
//!
//! Flags:
//!   --smoke            cut batch counts and iteration counts for a fast
//!                      CI pass (numbers are not meaningful, only the
//!                      harness and JSON output are exercised)
//!   --validate <path>  parse a previously written BENCH_micro.json and
//!                      assert it covers every expected benchmark name;
//!                      exits non-zero on malformed or incomplete files

use qs_esm::{BufferPool, ClientConn, LockManager, LockMode, Server, ServerConfig};
use qs_sim::{JsonWriter, Meter};
use qs_storage::{MemDisk, Page, StableMedia};
use qs_types::{ClientId, Lsn, Oid, PageId, TxnId, LOG_HEADER_SIZE, PAGE_SIZE};
use qs_wal::{LogManager, LogRecord, RecordWriter};
use quickstore::avl::AvlMap;
use quickstore::diff::{self, Region};
use quickstore::{Store, SystemConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Every benchmark the harness runs, in output order. `--validate` checks
/// a result file against this list, so keep it in sync with the `bench`
/// calls below.
const EXPECTED_NAMES: &[&str] = &[
    "kernel/diff_clean_page",
    "kernel/diff_clean_page_scalar",
    "kernel/diff_sparse_oo7",
    "kernel/commit_log_generation",
    "diff/page/1_regions",
    "diff/page/16_regions",
    "diff/page/128_regions",
    "avl/floor_lookup_4096_frames",
    "avl/insert_remove_cycle",
    "buffer_pool/hit_get",
    "buffer_pool/miss_insert_evict",
    "wal/append_update_record",
    "wal/encode_decode_round_trip",
    "lock_manager/uncontended_x_lock_release",
    "update_path/txn_64pages_2048_updates/PD-ESM",
    "update_path/txn_64pages_2048_updates/SD-ESM",
    "update_path/txn_64pages_2048_updates/WPL",
];

struct BenchResult {
    name: String,
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

/// Timing harness: per-benchmark warmup, then `batches` measured batches.
struct Harness {
    batches: usize,
    /// Divisor applied to each benchmark's iteration count (`--smoke`).
    iter_shrink: u64,
    results: Vec<BenchResult>,
}

impl Harness {
    fn new(smoke: bool) -> Harness {
        Harness {
            batches: if smoke { 3 } else { 15 },
            iter_shrink: if smoke { 200 } else { 1 },
            results: Vec::new(),
        }
    }

    /// Run `f` `iters_per_batch` times per batch, `self.batches` batches,
    /// after one warmup batch; record and print median/min/max ns per
    /// iteration.
    fn bench<F: FnMut()>(&mut self, name: &str, iters_per_batch: u64, mut f: F) {
        let iters = (iters_per_batch / self.iter_shrink).max(1);
        for _ in 0..iters {
            f(); // warmup
        }
        let mut per_iter_ns: Vec<f64> = (0..self.batches)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!("{name:<48} median {:>12}  min {:>12}  max {:>12}", ns(median), ns(min), ns(max));
        self.results.push(BenchResult {
            name: name.to_string(),
            median_ns: median,
            min_ns: min,
            max_ns: max,
        });
    }
}

fn ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} µs", v / 1e3)
    } else {
        format!("{v:.1} ns")
    }
}

/// The commit-path kernels the word-parallel diff PR targets: clean-page
/// scan (the dominant cost when few pages actually changed), the scalar
/// oracle on the same input (the pre-PR baseline, kept for an honest
/// same-binary speedup ratio), a sparse OO7-style object diff, and the
/// whole diff → combine → serialize pipeline.
fn bench_kernels(h: &mut Harness) {
    println!("-- commit hot-path kernels --");

    // Clean page: before == after, the all-equal fast path.
    let clean = vec![0xC3u8; PAGE_SIZE];
    let mut runs: Vec<Region> = Vec::with_capacity(64);
    h.bench("kernel/diff_clean_page", 20_000, || {
        runs.clear();
        diff::append_modified_runs(black_box(&clean), black_box(&clean), 0, &mut runs);
        black_box(runs.len());
    });
    h.bench("kernel/diff_clean_page_scalar", 2_000, || {
        black_box(diff::raw_modified_runs_scalar(black_box(&clean), black_box(&clean)));
    });

    // Sparse OO7-style update: 64 objects of 128 bytes on a page, 4 of
    // them with one 8-byte field rewritten — the shape of an OO7 T2a
    // traversal touching a fraction of the AtomicParts on a page.
    const OBJ: usize = 128;
    let before = vec![0x5Au8; PAGE_SIZE];
    let mut after = before.clone();
    for k in 0..4usize {
        let at = k * 16 * OBJ + 24; // every 16th object, one field
        after[at..at + 8].fill(0xEE);
    }
    h.bench("kernel/diff_sparse_oo7", 20_000, || {
        runs.clear();
        for o in 0..PAGE_SIZE / OBJ {
            let s = o * OBJ;
            diff::append_modified_runs(
                black_box(&before[s..s + OBJ]),
                black_box(&after[s..s + OBJ]),
                s,
                &mut runs,
            );
        }
        black_box(runs.len());
    });

    // Full log generation for one dirty page: diff, combine under the
    // header threshold, serialize one update record per region into a
    // reused batch buffer — `store::flush_records_for` in miniature.
    let mut regions: Vec<Region> = Vec::with_capacity(64);
    let mut enc: Vec<u8> = Vec::with_capacity(PAGE_SIZE);
    h.bench("kernel/commit_log_generation", 10_000, || {
        runs.clear();
        regions.clear();
        enc.clear();
        diff::append_modified_runs(black_box(&before), black_box(&after), 0, &mut runs);
        diff::combine_regions_into(&runs, LOG_HEADER_SIZE, &mut regions);
        let mut w = RecordWriter::new(&mut enc);
        for r in &regions {
            w.update(
                TxnId(1),
                Lsn::NULL,
                PageId(9),
                0,
                r.start as u16,
                &before[r.start..r.end],
                &after[r.start..r.end],
            );
        }
        black_box(w.records());
    });
}

fn bench_diff(h: &mut Harness) {
    println!("-- diff (8 KB page) --");
    for density in [1usize, 16, 128] {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        for i in 0..density {
            let at = (i * PAGE_SIZE / density.max(1)) % (PAGE_SIZE - 8);
            after[at..at + 8].fill(7);
        }
        h.bench(&format!("diff/page/{density}_regions"), 2_000, || {
            black_box(diff::diff_object(black_box(&before), black_box(&after)));
        });
    }
}

fn bench_avl(h: &mut Harness) {
    println!("-- avl descriptor index --");
    let mut map: AvlMap<u64, u32> = AvlMap::new();
    for i in 0..4096u64 {
        map.insert(i * PAGE_SIZE as u64, i as u32);
    }
    let mut addr = 0u64;
    h.bench("avl/floor_lookup_4096_frames", 200_000, || {
        addr = (addr + 123_457) % (4096 * PAGE_SIZE as u64);
        black_box(map.floor(black_box(&addr)));
    });
    let mut k = 1u64 << 40;
    h.bench("avl/insert_remove_cycle", 200_000, || {
        k += PAGE_SIZE as u64;
        map.insert(k, 1);
        map.remove(&k);
    });
}

fn bench_buffer_pool(h: &mut Harness) {
    println!("-- buffer pool --");
    let mut bp = BufferPool::new(1024);
    for i in 0..1024u32 {
        bp.insert(PageId(i), Page::new(), false).unwrap();
    }
    let mut i = 0u32;
    h.bench("buffer_pool/hit_get", 200_000, || {
        i = (i + 7) % 1024;
        black_box(bp.get(PageId(i)).is_some());
    });
    let mut bp = BufferPool::new(256);
    let mut j = 0u32;
    h.bench("buffer_pool/miss_insert_evict", 100_000, || {
        j += 1;
        black_box(bp.insert(PageId(j), Page::new(), false).unwrap());
    });
}

fn bench_log(h: &mut Harness) {
    println!("-- wal --");
    let media: Arc<dyn StableMedia> = Arc::new(MemDisk::new(LogManager::required_bytes(64 << 20)));
    let log = LogManager::format(media, 64 << 20).unwrap();
    let rec = LogRecord::Update {
        txn: TxnId(1),
        prev: Lsn::NULL,
        page: PageId(1),
        slot: 0,
        offset: 0,
        before: vec![0u8; 16],
        after: vec![1u8; 16],
    };
    let mut since_truncate = 0u32;
    h.bench("wal/append_update_record", 50_000, || {
        black_box(log.append(&rec).unwrap());
        // Keep the circular window bounded: drain every ~50k records
        // (≈6 MB of the 64 MB body).
        since_truncate += 1;
        if since_truncate == 50_000 {
            since_truncate = 0;
            log.force(log.tail_lsn()).unwrap();
            log.truncate_to(log.durable_lsn()).unwrap();
        }
    });
    h.bench("wal/encode_decode_round_trip", 100_000, || {
        let e = rec.encode();
        black_box(LogRecord::decode(&e).unwrap());
    });
}

fn bench_locks(h: &mut Harness) {
    println!("-- lock manager --");
    let lm = LockManager::new();
    let mut i = 0u32;
    h.bench("lock_manager/uncontended_x_lock_release", 100_000, || {
        i += 1;
        lm.lock(TxnId(1), PageId(i % 512).into(), LockMode::X).unwrap();
        if i.is_multiple_of(512) {
            lm.release_all(TxnId(1));
        }
    });
}

/// End-to-end update cost per scheme: hardware (fault-driven) vs software
/// (update-function) detection — the §3.2-vs-§3.3 tradeoff.
fn bench_update_paths(h: &mut Harness) {
    println!("-- update path (txn: 64 pages, 2048 updates) --");
    for cfg in [
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::sd_esm().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ] {
        let name = cfg.name();
        let meter = Meter::new();
        let server = Arc::new(
            Server::format(
                ServerConfig::new(cfg.flavor)
                    .with_pool_mb(4.0)
                    .with_volume_pages(512)
                    .with_log_mb(64.0),
                Arc::clone(&meter),
            )
            .unwrap(),
        );
        let pids = server.bulk_allocate(64).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            for _ in 0..32 {
                oids.push(Oid::new(pid, p.insert(pid, &[0u8; 128]).unwrap()));
            }
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg).unwrap();
        h.bench(&format!("update_path/txn_64pages_2048_updates/{name}"), 3, || {
            store.begin().unwrap();
            for (i, &oid) in oids.iter().enumerate() {
                store.modify(oid, (i % 16) * 8, &[i as u8; 8]).unwrap();
            }
            store.commit().unwrap();
        });
    }
}

/// Render the collected results as the BENCH_micro.json document.
fn render_json(results: &[BenchResult], smoke: bool) -> String {
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_str("benchmark", "micro")
        .field_str("build", if cfg!(debug_assertions) { "debug" } else { "release" })
        .key("smoke")
        .bool(smoke)
        .key("results")
        .begin_array();
    for r in results {
        w.begin_object()
            .field_str("name", &r.name)
            .field_f64("median_ns", r.median_ns)
            .field_f64("min_ns", r.min_ns)
            .field_f64("max_ns", r.max_ns)
            .end_object();
    }
    w.end_array().end_object();
    w.finish()
}

// ---------------------------------------------------------------------------
// `--validate`: JSON well-formedness (shared checker in
// `qs_bench::jsoncheck`) plus coverage of EXPECTED_NAMES.

fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    qs_bench::jsoncheck::check_json(&text)
        .map_err(|at| format!("{path}: malformed JSON at byte {at}"))?;
    let mut missing = Vec::new();
    for name in EXPECTED_NAMES {
        // The writer escapes nothing in these names (no quotes/backslashes),
        // so an exact field match is a faithful containment test.
        if !text.contains(&format!("\"name\":\"{name}\"")) {
            missing.push(*name);
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("{path}: missing benchmark results: {missing:?}"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--validate") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("usage: micro --validate <BENCH_micro.json>");
            std::process::exit(2);
        };
        match validate(path) {
            Ok(()) => {
                println!("{path}: ok ({} benchmarks covered)", EXPECTED_NAMES.len());
                return;
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    println!(
        "micro: warmup + median of {} batches per benchmark (build: {}{})",
        if smoke { 3 } else { 15 },
        if cfg!(debug_assertions) { "DEBUG — use --release for real numbers" } else { "release" },
        if smoke { ", SMOKE — numbers not meaningful" } else { "" }
    );
    let mut h = Harness::new(smoke);
    bench_kernels(&mut h);
    bench_diff(&mut h);
    bench_avl(&mut h);
    bench_buffer_pool(&mut h);
    bench_log(&mut h);
    bench_locks(&mut h);
    bench_update_paths(&mut h);
    let json = render_json(&h.results, smoke);
    std::fs::write("BENCH_micro.json", &json).expect("write BENCH_micro.json");
    println!("wrote BENCH_micro.json ({} results)", h.results.len());
}
