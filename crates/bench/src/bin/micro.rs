//! Micro-benchmarks for the core mechanisms the paper's analysis hinges
//! on: the region-combining diff, the AVL descriptor index, buffer-pool
//! replacement, log append/force, lock acquisition, and the per-update
//! cost of hardware vs software detection.
//!
//! A plain timing harness (`cargo run --release --bin micro`), replacing
//! the former Criterion bench so the perf trajectory can be tracked with
//! zero external crates: each benchmark runs a warmup, then N measured
//! batches, and reports the median, minimum, and maximum per-iteration
//! wall-clock time.

use qs_esm::{BufferPool, ClientConn, LockManager, LockMode, Server, ServerConfig};
use qs_sim::Meter;
use qs_storage::{MemDisk, Page, StableMedia};
use qs_types::{ClientId, Lsn, Oid, PageId, TxnId, PAGE_SIZE};
use qs_wal::{LogManager, LogRecord};
use quickstore::avl::AvlMap;
use quickstore::diff;
use quickstore::{Store, SystemConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Measured batches per benchmark (median-of-N).
const BATCHES: usize = 15;

/// Run `f` `iters_per_batch` times per batch, `BATCHES` batches, after one
/// warmup batch; print median/min/max nanoseconds per iteration.
fn bench<F: FnMut()>(name: &str, iters_per_batch: u64, mut f: F) {
    for _ in 0..iters_per_batch {
        f(); // warmup
    }
    let mut per_iter_ns: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters_per_batch as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    println!("{name:<48} median {:>12}  min {:>12}  max {:>12}", ns(median), ns(min), ns(max));
}

fn ns(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} s", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} ms", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} µs", v / 1e3)
    } else {
        format!("{v:.1} ns")
    }
}

fn bench_diff() {
    println!("-- diff (8 KB page) --");
    for density in [1usize, 16, 128] {
        let before = vec![0u8; PAGE_SIZE];
        let mut after = before.clone();
        for i in 0..density {
            let at = (i * PAGE_SIZE / density.max(1)) % (PAGE_SIZE - 8);
            after[at..at + 8].fill(7);
        }
        bench(&format!("diff/page/{density}_regions"), 2_000, || {
            black_box(diff::diff_object(black_box(&before), black_box(&after)));
        });
    }
}

fn bench_avl() {
    println!("-- avl descriptor index --");
    let mut map: AvlMap<u64, u32> = AvlMap::new();
    for i in 0..4096u64 {
        map.insert(i * PAGE_SIZE as u64, i as u32);
    }
    let mut addr = 0u64;
    bench("avl/floor_lookup_4096_frames", 200_000, || {
        addr = (addr + 123_457) % (4096 * PAGE_SIZE as u64);
        black_box(map.floor(black_box(&addr)));
    });
    let mut k = 1u64 << 40;
    bench("avl/insert_remove_cycle", 200_000, || {
        k += PAGE_SIZE as u64;
        map.insert(k, 1);
        map.remove(&k);
    });
}

fn bench_buffer_pool() {
    println!("-- buffer pool --");
    let mut bp = BufferPool::new(1024);
    for i in 0..1024u32 {
        bp.insert(PageId(i), Page::new(), false).unwrap();
    }
    let mut i = 0u32;
    bench("buffer_pool/hit_get", 200_000, || {
        i = (i + 7) % 1024;
        black_box(bp.get(PageId(i)).is_some());
    });
    let mut bp = BufferPool::new(256);
    let mut j = 0u32;
    bench("buffer_pool/miss_insert_evict", 100_000, || {
        j += 1;
        black_box(bp.insert(PageId(j), Page::new(), false).unwrap());
    });
}

fn bench_log() {
    println!("-- wal --");
    let media: Arc<dyn StableMedia> = Arc::new(MemDisk::new(LogManager::required_bytes(64 << 20)));
    let log = LogManager::format(media, 64 << 20).unwrap();
    let rec = LogRecord::Update {
        txn: TxnId(1),
        prev: Lsn::NULL,
        page: PageId(1),
        slot: 0,
        offset: 0,
        before: vec![0u8; 16],
        after: vec![1u8; 16],
    };
    let mut since_truncate = 0u32;
    bench("wal/append_update_record", 50_000, || {
        black_box(log.append(&rec).unwrap());
        // Keep the circular window bounded: drain every ~50k records
        // (≈6 MB of the 64 MB body).
        since_truncate += 1;
        if since_truncate == 50_000 {
            since_truncate = 0;
            log.force(log.tail_lsn()).unwrap();
            log.truncate_to(log.durable_lsn()).unwrap();
        }
    });
    bench("wal/encode_decode_round_trip", 100_000, || {
        let e = rec.encode();
        black_box(LogRecord::decode(&e).unwrap());
    });
}

fn bench_locks() {
    println!("-- lock manager --");
    let lm = LockManager::new();
    let mut i = 0u32;
    bench("lock_manager/uncontended_x_lock_release", 100_000, || {
        i += 1;
        lm.lock(TxnId(1), PageId(i % 512), LockMode::X).unwrap();
        if i.is_multiple_of(512) {
            lm.release_all(TxnId(1));
        }
    });
}

/// End-to-end update cost per scheme: hardware (fault-driven) vs software
/// (update-function) detection — the §3.2-vs-§3.3 tradeoff.
fn bench_update_paths() {
    println!("-- update path (txn: 64 pages, 2048 updates) --");
    for cfg in [
        SystemConfig::pd_esm().with_memory(2.0, 0.5),
        SystemConfig::sd_esm().with_memory(2.0, 0.5),
        SystemConfig::wpl().with_memory(2.0, 0.0),
    ] {
        let name = cfg.name();
        let meter = Meter::new();
        let server = Arc::new(
            Server::format(
                ServerConfig::new(cfg.flavor)
                    .with_pool_mb(4.0)
                    .with_volume_pages(512)
                    .with_log_mb(64.0),
                Arc::clone(&meter),
            )
            .unwrap(),
        );
        let pids = server.bulk_allocate(64).unwrap();
        let mut oids = Vec::new();
        for &pid in &pids {
            let mut p = Page::new();
            for _ in 0..32 {
                oids.push(Oid::new(pid, p.insert(pid, &[0u8; 128]).unwrap()));
            }
            server.bulk_write(pid, &p).unwrap();
        }
        server.bulk_sync().unwrap();
        let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), meter);
        let mut store = Store::new(client, cfg).unwrap();
        bench(&format!("update_path/txn_64pages_2048_updates/{name}"), 3, || {
            store.begin().unwrap();
            for (i, &oid) in oids.iter().enumerate() {
                store.modify(oid, (i % 16) * 8, &[i as u8; 8]).unwrap();
            }
            store.commit().unwrap();
        });
    }
}

fn main() {
    println!(
        "micro: warmup + median of {BATCHES} batches per benchmark (build: {})",
        if cfg!(debug_assertions) { "DEBUG — use --release for real numbers" } else { "release" }
    );
    bench_diff();
    bench_avl();
    bench_buffer_pool();
    bench_log();
    bench_locks();
    bench_update_paths();
}
