//! Regenerates every table and figure of the paper in one run, writing
//! each to stdout and to `results/<name>.txt`.
//!
//! All jobs always run: a failure no longer aborts the remaining figures —
//! failures are collected, reported together at the end, and the process
//! exits non-zero once. Output and `results/` files are emitted in the
//! canonical job order regardless of completion order, so the committed
//! artifacts are byte-identical for any `--jobs` value.
//!
//! Flags:
//!   --jobs N    run up to N figure jobs concurrently (default 1: the
//!               serial order the committed results/ were produced with)

use std::fs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

type FigureFn = fn() -> qs_types::QsResult<String>;

fn main() {
    let jobs: Vec<(&str, FigureFn)> = vec![
        ("table1_2", qs_bench::figures::table1_2),
        ("table3", qs_bench::figures::table3),
        ("fig04_05", qs_bench::figures::fig04_05),
        ("fig06_07", qs_bench::figures::fig06_07),
        ("fig08", qs_bench::figures::fig08),
        ("fig09", qs_bench::figures::fig09),
        ("fig10_11", qs_bench::figures::fig10_11),
        ("fig12_13", qs_bench::figures::fig12_13),
        ("fig14", qs_bench::figures::fig14),
        ("fig15_16", qs_bench::figures::fig15_16),
        ("fig17_18", qs_bench::figures::fig17_18),
    ];

    let args: Vec<String> = std::env::args().skip(1).collect();
    let workers = match args.iter().position(|a| a == "--jobs") {
        Some(pos) => match args.get(pos + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n >= 1 => n.min(jobs.len()),
            _ => {
                eprintln!("usage: all_figures [--jobs N]");
                std::process::exit(2);
            }
        },
        None => 1,
    };

    fs::create_dir_all("results").ok();

    // Work-stealing over the job list; each slot collects one job's
    // outcome so results can be emitted in canonical order afterwards.
    type Outcome = (qs_types::QsResult<String>, f64);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Outcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((_, f)) = jobs.get(i) else { break };
                let t0 = Instant::now();
                let out = f();
                *slots[i].lock().unwrap() = Some((out, t0.elapsed().as_secs_f64()));
            });
        }
    });

    let mut failures: Vec<(&str, String)> = Vec::new();
    for ((name, _), slot) in jobs.iter().zip(&slots) {
        let (out, secs) = slot.lock().unwrap().take().expect("every job ran");
        match out {
            Ok(s) => {
                println!("{s}");
                println!("[{name} done in {secs:.1}s]\n");
                fs::write(format!("results/{name}.txt"), &s).ok();
            }
            Err(e) => {
                eprintln!("{name} failed after {secs:.1}s: {e}");
                failures.push((name, e.to_string()));
            }
        }
    }
    if !failures.is_empty() {
        eprintln!("{} of {} figure jobs failed:", failures.len(), jobs.len());
        for (name, e) in &failures {
            eprintln!("  {name}: {e}");
        }
        std::process::exit(1);
    }
}
