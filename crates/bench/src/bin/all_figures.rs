//! Regenerates every table and figure of the paper in one run, writing
//! each to stdout and to `results/<name>.txt`.

use std::fs;
use std::time::Instant;

type FigureFn = fn() -> qs_types::QsResult<String>;

fn main() {
    let jobs: Vec<(&str, FigureFn)> = vec![
        ("table1_2", qs_bench::figures::table1_2),
        ("table3", qs_bench::figures::table3),
        ("fig04_05", qs_bench::figures::fig04_05),
        ("fig06_07", qs_bench::figures::fig06_07),
        ("fig08", qs_bench::figures::fig08),
        ("fig09", qs_bench::figures::fig09),
        ("fig10_11", qs_bench::figures::fig10_11),
        ("fig12_13", qs_bench::figures::fig12_13),
        ("fig14", qs_bench::figures::fig14),
        ("fig15_16", qs_bench::figures::fig15_16),
        ("fig17_18", qs_bench::figures::fig17_18),
    ];
    fs::create_dir_all("results").ok();
    for (name, f) in jobs {
        let t0 = Instant::now();
        match f() {
            Ok(s) => {
                println!("{s}");
                println!("[{name} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
                fs::write(format!("results/{name}.txt"), &s).ok();
            }
            Err(e) => {
                eprintln!("{name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
