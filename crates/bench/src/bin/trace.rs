//! Per-scheme commit-path histograms, crash flight recording, and restart
//! breakdown. Writes `results/restart_trace.json`.

fn main() {
    match qs_bench::tracerun::run() {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("trace failed: {e}");
            std::process::exit(1);
        }
    }
}
