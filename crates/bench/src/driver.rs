//! Shared transaction-driving harness for the wall-clock scale bench.
//!
//! Three ways to push the same disjoint-working-set update workload
//! through a server, all measuring *real* elapsed time (not simulated
//! 1995 time):
//!
//! * [`drive_threads`] — one OS thread per client making direct server
//!   calls (the thread-per-connection shape the paper's testbed had),
//!   optionally with a global mutex around every call to reproduce the
//!   pre-decomposition single-lock server.
//! * [`drive_reactor`] — the same workload expressed as typed
//!   [`Request`] messages over reactor [`ClientPort`]s, with a small set
//!   of driver threads multiplexing hundreds of simulated clients; shed
//!   (`Overloaded`) replies are retried, so admission control shapes but
//!   never loses work.
//!
//! Both drivers run the identical per-transaction protocol — begin, then
//! per page: X-lock + fetch, mutate, ship log record, ship dirty page,
//! then commit — so their wall clocks are directly comparable.

use qs_esm::{
    ClientPort, LockMode, Reactor, RecoveryFlavor, Request, Response, Server, ServerConfig,
    StableParts,
};
use qs_sim::Meter;
use qs_storage::{MemDisk, Page, Volume};
use qs_trace::Tracer;
use qs_types::sync::Mutex;
use qs_types::{ClientId, Lsn, PageId, TxnId};
use qs_wal::{LogManager, LogRecord};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Object bytes written per page per transaction (pages are loaded with
/// one object of this size).
pub const OBJECT_BYTES: usize = 64;

/// Shape of one scale-bench run.
#[derive(Debug, Clone, Copy)]
pub struct ScaleWorkload {
    pub clients: usize,
    pub txns_per_client: usize,
    pub pages_per_client: usize,
    /// Real latency of one log-disk sync — what makes serialization on
    /// the commit path expensive, as in life.
    pub sync_latency: Duration,
}

impl ScaleWorkload {
    pub fn total_txns(&self) -> usize {
        self.clients * self.txns_per_client
    }
}

/// Build a formatted ESM server with a sync-latency log disk and a
/// bulk-loaded working set: one page set per client, one `OBJECT_BYTES`
/// object per page.
pub fn build_scale_server(
    cfg: ServerConfig,
    w: &ScaleWorkload,
    tracer: Arc<Tracer>,
) -> (Arc<Server>, Vec<Vec<PageId>>) {
    assert_eq!(cfg.flavor, RecoveryFlavor::EsmAries, "scale bench drives the ESM flavor");
    let parts = StableParts {
        data_media: Arc::new(MemDisk::new(Volume::required_bytes(cfg.volume_pages))),
        log_media: Arc::new(MemDisk::with_sync_latency(
            LogManager::required_bytes(cfg.log_bytes),
            w.sync_latency,
        )),
        flight: None,
    };
    let server = Arc::new(Server::format_on_traced(parts, cfg, Meter::new(), tracer).unwrap());
    let pids = server.bulk_allocate(w.clients * w.pages_per_client).unwrap();
    for &pid in &pids {
        let mut p = Page::new();
        p.insert(pid, &[0u8; OBJECT_BYTES]).unwrap();
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    let sets = pids.chunks(w.pages_per_client).map(|c| c.to_vec()).collect();
    (server, sets)
}

/// [`build_scale_server`], except the *data* disk also charges
/// `data_write_latency` per page write — the device time a quiesced
/// checkpoint serializes all clients behind, and the thing the
/// background flusher's elevator drain overlaps with commits.
pub fn build_ckpt_server(
    cfg: ServerConfig,
    w: &ScaleWorkload,
    data_write_latency: Duration,
    tracer: Arc<Tracer>,
) -> (Arc<Server>, Vec<Vec<PageId>>) {
    assert_eq!(cfg.flavor, RecoveryFlavor::EsmAries, "ckpt bench drives the ESM flavor");
    let parts = StableParts {
        data_media: Arc::new(MemDisk::with_latencies(
            Volume::required_bytes(cfg.volume_pages),
            Duration::ZERO,
            data_write_latency,
        )),
        log_media: Arc::new(MemDisk::with_sync_latency(
            LogManager::required_bytes(cfg.log_bytes),
            w.sync_latency,
        )),
        flight: None,
    };
    let server = Arc::new(Server::format_on_traced(parts, cfg, Meter::new(), tracer).unwrap());
    let pids = server.bulk_allocate(w.clients * w.pages_per_client).unwrap();
    for &pid in &pids {
        let mut p = Page::new();
        p.insert(pid, &[0u8; OBJECT_BYTES]).unwrap();
        server.bulk_write(pid, &p).unwrap();
    }
    server.bulk_sync().unwrap();
    let sets = pids.chunks(w.pages_per_client).map(|c| c.to_vec()).collect();
    (server, sets)
}

/// The deterministic per-transaction fill value for client `i`'s `t`-th
/// transaction.
fn txn_val(i: usize, t: usize) -> u8 {
    ((i * 31 + t) % 251 + 1) as u8
}

fn update_record(txn: TxnId, pid: PageId, val: u8) -> LogRecord {
    LogRecord::Update {
        txn,
        prev: Lsn::NULL,
        page: pid,
        slot: 0,
        offset: 0,
        before: vec![0u8; OBJECT_BYTES],
        after: vec![val; OBJECT_BYTES],
    }
}

/// One update transaction over `set` via direct server calls, optionally
/// with every call under a global mutex (the single-lock baseline).
fn one_txn_direct(server: &Server, set: &[PageId], val: u8, global: Option<&Mutex<()>>) {
    macro_rules! call {
        ($e:expr) => {{
            let _g = global.map(|m| m.lock());
            $e
        }};
    }
    let txn = call!(server.begin());
    for &pid in set {
        call!(server.lock_page(txn, pid, LockMode::X).unwrap());
        let mut page = call!(server.fetch_page(txn, pid).unwrap());
        page.object_mut(pid, 0).unwrap().fill(val);
        let rec = update_record(txn, pid, val);
        call!(server.receive_log_records(txn, vec![rec]).unwrap());
        call!(server.receive_dirty_page(txn, pid, page).unwrap());
    }
    call!(server.commit(txn).unwrap());
}

/// Thread-per-client driver: every client is an OS thread making direct
/// server calls. Returns the wall clock for the whole run.
pub fn drive_threads(
    server: &Arc<Server>,
    sets: &[Vec<PageId>],
    txns_per_client: usize,
    global: Option<&Arc<Mutex<()>>>,
) -> Duration {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (i, set) in sets.iter().enumerate() {
            let server = Arc::clone(server);
            let set = set.clone();
            let global = global.cloned();
            s.spawn(move || {
                for t in 0..txns_per_client {
                    one_txn_direct(&server, &set, txn_val(i, t), global.as_deref());
                }
            });
        }
    });
    t0.elapsed()
}

/// Thread-per-client driver that times every `commit()` call. Same
/// protocol as [`drive_threads`], but each client records how long its
/// commit waited — the latency a checkpoint in flight inflates when it
/// quiesces the server, and must not when it runs concurrently. Returns
/// all commit latencies in nanoseconds, unordered.
pub fn drive_threads_commit_latency(
    server: &Arc<Server>,
    sets: &[Vec<PageId>],
    txns_per_client: usize,
) -> Vec<u64> {
    let lats = Mutex::new(Vec::with_capacity(sets.len() * txns_per_client));
    std::thread::scope(|s| {
        for (i, set) in sets.iter().enumerate() {
            let server = Arc::clone(server);
            let set = set.clone();
            let lats = &lats;
            s.spawn(move || {
                let mut mine = Vec::with_capacity(txns_per_client);
                for t in 0..txns_per_client {
                    let val = txn_val(i, t);
                    let txn = server.begin();
                    for &pid in &set {
                        server.lock_page(txn, pid, LockMode::X).unwrap();
                        let mut page = server.fetch_page(txn, pid).unwrap();
                        page.object_mut(pid, 0).unwrap().fill(val);
                        let rec = update_record(txn, pid, val);
                        server.receive_log_records(txn, vec![rec]).unwrap();
                        server.receive_dirty_page(txn, pid, page).unwrap();
                    }
                    let t0 = Instant::now();
                    server.commit(txn).unwrap();
                    mine.push(t0.elapsed().as_nanos() as u64);
                }
                lats.lock().extend(mine);
            });
        }
    });
    lats.into_inner()
}

/// Where a [`SimClient`] is in its current transaction.
enum Step {
    Begin,
    Fetch(usize),
    Note(usize),
    Log(usize),
    Ship(usize),
    Commit,
}

/// One simulated client: a tiny state machine over a raw [`ClientPort`],
/// pumped by a driver thread. Runs the same protocol as
/// [`drive_threads`]'s direct calls, one outstanding request at a time.
struct SimClient {
    port: ClientPort,
    set: Vec<PageId>,
    idx: usize,
    txns_left: usize,
    seq: usize,
    txn: TxnId,
    step: Step,
    /// The fetched page being updated (held across Note/Log/Ship).
    page: Option<Box<Page>>,
    awaiting: bool,
    /// Pump cycles to sit out after an `Overloaded` reply — the client's
    /// half of backpressure. Without it a shed client resubmits every
    /// driver pass and the retry traffic itself swamps admission.
    cooldown: u32,
    done: bool,
}

impl SimClient {
    fn new(port: ClientPort, set: Vec<PageId>, idx: usize, txns: usize) -> SimClient {
        SimClient {
            port,
            set,
            idx,
            txns_left: txns,
            seq: 0,
            txn: TxnId::INVALID,
            step: Step::Begin,
            page: None,
            awaiting: false,
            cooldown: 0,
            done: txns == 0,
        }
    }

    fn val(&self) -> u8 {
        txn_val(self.idx, self.seq)
    }

    fn current_request(&self) -> Request {
        match self.step {
            Step::Begin => Request::Begin,
            Step::Fetch(i) => {
                Request::FetchLocked { txn: self.txn, pid: self.set[i], mode: LockMode::X }
            }
            Step::Note(i) => Request::NoteLogged { txn: self.txn, pid: self.set[i] },
            Step::Log(i) => Request::LogBytes {
                txn: self.txn,
                bytes: update_record(self.txn, self.set[i], self.val()).encode(),
            },
            Step::Ship(i) => Request::DirtyPage {
                txn: self.txn,
                pid: self.set[i],
                page: self.page.clone().expect("page fetched before ship"),
            },
            Step::Commit => Request::Commit { txn: self.txn },
        }
    }

    fn advance(&mut self, resp: Response) {
        match (&self.step, resp) {
            (Step::Begin, Response::Began(t)) => {
                self.txn = t;
                self.step = Step::Fetch(0);
            }
            (Step::Fetch(i), Response::Page(mut p)) => {
                let i = *i;
                p.object_mut(self.set[i], 0).unwrap().fill(self.val());
                self.page = Some(p);
                self.step = Step::Note(i);
            }
            (Step::Note(i), Response::Ok) => self.step = Step::Log(*i),
            (Step::Log(i), Response::Ok) => self.step = Step::Ship(*i),
            (Step::Ship(i), Response::Ok) => {
                let next = *i + 1;
                self.page = None;
                self.step = if next < self.set.len() { Step::Fetch(next) } else { Step::Commit };
            }
            (Step::Commit, Response::Committed(_)) => {
                self.seq += 1;
                self.txns_left -= 1;
                if self.txns_left == 0 {
                    self.done = true;
                } else {
                    self.step = Step::Begin;
                }
            }
            (_, Response::Err(e)) => panic!("sim client {}: server error: {e}", self.idx),
            (_, other) => {
                panic!("sim client {}: unexpected {} reply", self.idx, other.kind())
            }
        }
    }

    /// One pump: submit the pending request or poll the mailbox. Returns
    /// true when anything happened (admission sheds count as progress —
    /// the resubmit is the backpressure loop working).
    fn pump(&mut self) -> bool {
        if self.done {
            return false;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return false;
        }
        if !self.awaiting {
            self.port.submit(self.current_request());
            self.awaiting = true;
            return true;
        }
        match self.port.try_recv() {
            None => false,
            Some(Response::Overloaded) => {
                // Resubmit after sitting out a while; shed-and-retry is
                // backpressure working, not progress.
                self.awaiting = false;
                self.cooldown = 64;
                false
            }
            Some(resp) => {
                self.awaiting = false;
                self.advance(resp);
                true
            }
        }
    }
}

/// Reactor driver: `sets.len()` simulated clients multiplexed over
/// `drivers` pumping threads. Returns the wall clock for the whole run.
pub fn drive_reactor(
    reactor: &Reactor,
    sets: &[Vec<PageId>],
    txns_per_client: usize,
    drivers: usize,
) -> Duration {
    let mut clients: Vec<SimClient> = sets
        .iter()
        .enumerate()
        .map(|(i, set)| {
            SimClient::new(reactor.connect(ClientId(i as u16)), set.clone(), i, txns_per_client)
        })
        .collect();
    let drivers = drivers.clamp(1, clients.len().max(1));
    let chunk = clients.len().div_ceil(drivers);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for group in clients.chunks_mut(chunk) {
            s.spawn(move || loop {
                let mut progress = false;
                let mut all_done = true;
                for c in group.iter_mut() {
                    if !c.done {
                        all_done = false;
                        progress |= c.pump();
                    }
                }
                if all_done {
                    break;
                }
                if !progress {
                    std::thread::yield_now();
                }
            });
        }
    });
    t0.elapsed()
}

/// Read back every workload page and assert the last committed value is
/// in place — both drivers must leave identical, complete state.
pub fn assert_workload_applied(server: &Server, sets: &[Vec<PageId>], txns_per_client: usize) {
    if txns_per_client == 0 {
        return;
    }
    for (i, set) in sets.iter().enumerate() {
        let want = txn_val(i, txns_per_client - 1);
        for &pid in set {
            let page = server.read_page_for_test(pid).unwrap();
            assert_eq!(
                page.object(pid, 0).unwrap(),
                &vec![want; OBJECT_BYTES][..],
                "client {i} page {pid} missing its final committed update"
            );
        }
    }
}
