//! The `trace` binary's engine: run one OO7 update workload per scheme
//! with the flight-recorder tracer installed, crash the server, restart
//! it, and report commit-path latency histograms plus the per-phase
//! restart breakdown. Writes `results/restart_trace.json`.
//!
//! This is observability, not measurement: the tracer only *reads* the
//! meter, so enabling it changes no figure output (see
//! `tests/trace_overhead.rs`).

use qs_esm::{ClientConn, Server, ServerConfig};
use qs_oo7::{gen, params::Oo7Params, traversal, T2Mode};
use qs_sim::{HardwareModel, JsonWriter, Meter};
use qs_trace::{HistSummary, RestartReport, Tracer};
use qs_types::{ClientId, QsResult};
use quickstore::{Store, SystemConfig};
use std::sync::Arc;

/// Ring capacity for the flight recorder in this run.
const RING_CAPACITY: usize = 256;

/// What one scheme's traced run produced.
struct SchemeTrace {
    name: String,
    hists: Vec<(String, HistSummary)>,
    events: u64,
    report: RestartReport,
}

fn small_server_config(cfg: &SystemConfig) -> ServerConfig {
    // The determinism-test sizing: small enough to run in milliseconds,
    // big enough that commits, forces, and evictions all happen.
    ServerConfig::new(cfg.flavor).with_pool_mb(2.0).with_volume_pages(2048).with_log_mb(16.0)
}

fn trace_one(cfg: &SystemConfig) -> QsResult<SchemeTrace> {
    let meter = Meter::new();
    let tracer = Tracer::flight(Arc::clone(&meter), HardwareModel::paper_1995(), RING_CAPACITY);
    let server = Arc::new(Server::format_traced(
        small_server_config(cfg),
        Arc::clone(&meter),
        Arc::clone(&tracer),
    )?);
    let mut params = Oo7Params::tiny();
    params.num_modules = 1;
    let db = gen::generate(&server, &params, 1995)?;
    let conn = ClientConn::new(
        ClientId(0),
        Arc::clone(&server),
        cfg.client_pool_pages(),
        Arc::clone(&meter),
    );
    let mut store = Store::new(conn, cfg.clone())?;

    // One warm-up plus a few measured update traversals: enough commits
    // for the latency histograms to have a shape.
    for mode in [T2Mode::A, T2Mode::A, T2Mode::B, T2Mode::C] {
        store.begin()?;
        traversal::t2(&mut store, &db.modules[0], mode)?;
        store.commit()?;
    }

    let hists = tracer.summaries();
    let events = tracer.events_recorded();

    // Crash mid-life (all volatile state lost, flight recorder snapshotted
    // into the stable parts) and restart with a fresh tracer.
    drop(store);
    let server = Arc::try_unwrap(server).ok().expect("store dropped; sole owner");
    let parts = server.crash();
    let meter2 = Meter::new();
    let tracer2 = Tracer::flight(Arc::clone(&meter2), HardwareModel::paper_1995(), RING_CAPACITY);
    let server2 = Server::restart_traced(parts, small_server_config(cfg), meter2, tracer2)?;
    let report = server2.restart_report().expect("restart_traced always reports");
    Ok(SchemeTrace { name: cfg.name(), hists, events, report })
}

/// `ns` histograms (recorded via `Tracer::record_secs`) render as µs.
fn is_time_hist(name: &str) -> bool {
    name.starts_with("commit")
}

fn render_hist_line(name: &str, s: &HistSummary) -> String {
    if is_time_hist(name) {
        let us = |v: u64| v as f64 / 1000.0;
        format!(
            "  {:<28} n={:<5} mean={:>10.1}us p50={:>10.1}us p90={:>10.1}us p99={:>10.1}us max={:>10.1}us\n",
            name,
            s.count,
            s.mean / 1000.0,
            us(s.p50),
            us(s.p90),
            us(s.p99),
            us(s.max)
        )
    } else {
        format!(
            "  {:<28} n={:<5} mean={:>10.1}   p50={:>10}   p90={:>10}   p99={:>10}   max={:>10}\n",
            name, s.count, s.mean, s.p50, s.p90, s.p99, s.max
        )
    }
}

fn render_text(traces: &[SchemeTrace]) -> String {
    let mut out = String::new();
    out.push_str("qs-trace: commit-path histograms and restart breakdown per scheme\n");
    out.push_str("(simulated time; durations in microseconds of 1995-testbed time)\n");
    for t in traces {
        out.push_str(&format!("\n=== {} ({} events traced) ===\n", t.name, t.events));
        for (name, s) in &t.hists {
            out.push_str(&render_hist_line(name, s));
        }
        out.push_str(&t.report.render_text());
    }
    out
}

fn render_json(traces: &[SchemeTrace]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schemes");
    w.begin_array();
    for t in traces {
        w.begin_object();
        w.field_str("name", &t.name);
        w.field_u64("events_traced", t.events);
        w.key("histograms");
        w.begin_object();
        for (name, s) in &t.hists {
            w.key(name);
            s.write_json(&mut w);
        }
        w.end_object();
        w.key("restart");
        t.report.write_json(&mut w);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Run every scheme, write `results/restart_trace.json`, and return the
/// human-readable report.
pub fn run() -> QsResult<String> {
    let configs: Vec<SystemConfig> =
        SystemConfig::all_schemes().into_iter().map(|(cfg, _)| cfg.with_memory(2.0, 0.5)).collect();
    let traces: Vec<SchemeTrace> = configs.iter().map(trace_one).collect::<QsResult<_>>()?;
    std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/restart_trace.json", render_json(&traces)))
        .map_err(|e| qs_types::QsError::Protocol {
            detail: format!("writing results/restart_trace.json: {e}"),
        })?;
    let mut text = render_text(&traces);
    text.push_str("\nwrote results/restart_trace.json\n");
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_scheme_traces_and_reports() {
        let t = trace_one(&SystemConfig::pd_esm().with_memory(2.0, 0.5)).unwrap();
        assert!(t.events > 0, "flight recorder saw traffic");
        assert!(t.hists.iter().any(|(n, _)| *n == "commit_latency"));
        assert!(t.report.total_records() > 0);
        let json = render_json(&[t]);
        assert!(json.contains("\"histograms\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
