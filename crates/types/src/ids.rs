//! Strongly-typed identifiers.
//!
//! Each wrapper is a plain newtype so identifiers cannot be mixed up at call
//! sites (a `PageId` is not a `FrameId`, even though both are integers).

use std::fmt;

/// Identifies a page's *permanent location* on the data volume.
///
/// The paper calls this the PID; the WPL table is keyed by it. Page 0 is a
/// valid page (the volume header in our layout is handled by the volume
/// itself, not by reserving PIDs).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u32);

impl PageId {
    pub const INVALID: PageId = PageId(u32::MAX);

    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    #[inline]
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }
}

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_valid() {
            write!(f, "P{}", self.0)
        } else {
            write!(f, "P<invalid>")
        }
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A persistent object identifier: a page plus a slot within that page.
///
/// QuickStore objects live on slotted pages; an unswizzled on-disk pointer
/// is logically an `Oid` (plus mapping information resolved at fault time).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    pub page: PageId,
    pub slot: u16,
}

impl Oid {
    pub const NULL: Oid = Oid { page: PageId::INVALID, slot: u16::MAX };

    #[inline]
    pub fn new(page: PageId, slot: u16) -> Self {
        Oid { page, slot }
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Oid(NULL)")
        } else {
            write!(f, "Oid({}.{})", self.page, self.slot)
        }
    }
}

/// Transaction identifier (TID in the paper). Monotonically assigned by the
/// server's transaction manager; never reused within a server lifetime.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TxnId(pub u64);

impl TxnId {
    pub const INVALID: TxnId = TxnId(u64::MAX);
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Log sequence number: a byte offset into the logical (unwrapped) log
/// address space. The circular log maps it onto the log disk modulo its
/// capacity; comparisons on `Lsn` are therefore total even across wraps.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    pub const NULL: Lsn = Lsn(0);
    pub const INVALID: Lsn = Lsn(u64::MAX);

    #[inline]
    pub fn advance(self, by: usize) -> Lsn {
        Lsn(self.0 + by as u64)
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LSN:{}", self.0)
    }
}

/// Identifies one client workstation in the page-shipping system.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct ClientId(pub u16);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Index of an 8 KB virtual-memory frame in a client's mapped region.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FrameId(pub u32);

impl FrameId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulated virtual address: `frame * PAGE_SIZE + offset`.
///
/// The software MMU (`qs-vmem`) decodes it back into (frame, offset); the
/// QuickStore descriptor table is keyed by the frame base address exactly as
/// the paper's height-balanced tree is keyed by mapped address ranges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VAddr(pub u64);

impl VAddr {
    pub const NULL: VAddr = VAddr(0);

    #[inline]
    pub fn new(frame: FrameId, offset: usize) -> Self {
        debug_assert!(offset < crate::PAGE_SIZE);
        VAddr(frame.0 as u64 * crate::PAGE_SIZE as u64 + offset as u64)
    }

    #[inline]
    pub fn frame(self) -> FrameId {
        FrameId((self.0 / crate::PAGE_SIZE as u64) as u32)
    }

    #[inline]
    pub fn offset(self) -> usize {
        (self.0 % crate::PAGE_SIZE as u64) as usize
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Address `bytes` past this one (may cross into the next frame; the MMU
    /// rejects accesses that span frames, mirroring per-page protection).
    #[inline]
    #[allow(clippy::should_implement_trait)] // pointer arithmetic, not numeric Add
    pub fn add(self, bytes: usize) -> VAddr {
        VAddr(self.0 + bytes as u64)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PAGE_SIZE;

    #[test]
    fn vaddr_round_trip() {
        let a = VAddr::new(FrameId(3), 100);
        assert_eq!(a.frame(), FrameId(3));
        assert_eq!(a.offset(), 100);
        assert_eq!(a.0, 3 * PAGE_SIZE as u64 + 100);
    }

    #[test]
    fn vaddr_add_crosses_frames() {
        let a = VAddr::new(FrameId(0), PAGE_SIZE - 1);
        let b = a.add(1);
        assert_eq!(b.frame(), FrameId(1));
        assert_eq!(b.offset(), 0);
    }

    #[test]
    fn oid_null_is_null() {
        assert!(Oid::NULL.is_null());
        assert!(!Oid::new(PageId(0), 0).is_null());
    }

    #[test]
    fn lsn_ordering_and_advance() {
        let a = Lsn(10);
        let b = a.advance(90);
        assert_eq!(b, Lsn(100));
        assert!(a < b);
        assert!(Lsn::NULL < a);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(format!("{}", PageId(7)), "P7");
        assert_eq!(format!("{:?}", PageId::INVALID), "P<invalid>");
    }
}
