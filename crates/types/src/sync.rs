//! Poison-ignoring wrappers over `std::sync` locking primitives.
//!
//! The engine previously used `parking_lot`, whose guards have no poison
//! layer. These wrappers keep that calling convention — `lock()`, `read()`,
//! `write()` return guards directly, and `Condvar::wait` re-blocks an
//! existing guard in place — on top of the standard library, so the
//! workspace stays free of external crates.
//!
//! Poisoning is deliberately ignored (`PoisonError::into_inner`): a panic
//! in one test thread must not cascade into unrelated `lock()` calls, and
//! the crash-recovery tests *simulate* crashes by dropping state, never by
//! panicking while a lock is held.

use std::sync::PoisonError;

/// `std::sync::Mutex` with a guard-returning, poison-ignoring `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

/// Guard for [`Mutex`]. Wraps the std guard so [`Condvar::wait`] can take
/// it back temporarily without exposing poison handling at call sites.
pub struct MutexGuard<'a, T>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Non-blocking acquire: `None` when another thread holds the lock.
    /// A poisoned (but free) mutex is recovered exactly like [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// `std::sync::RwLock` with guard-returning, poison-ignoring accessors.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// `std::sync::Condvar` that re-blocks a [`MutexGuard`] in place
/// (`parking_lot`-style `wait(&mut guard)`).
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically release the guard's mutex, wait for a notification, and
    /// reacquire — the guard is valid (and holds the lock) on return.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(5);
        {
            let _held = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
        }
        *m.try_lock().expect("free now") = 6;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn lock_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the mutex");
        })
        .join();
        // A std mutex would now return Err(PoisonError); ours keeps working.
        *m.lock() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }
}
