//! Shared identifiers, constants, and error types for the QuickStore
//! crash-recovery reproduction (White & DeWitt, SIGMOD 1995).
//!
//! Everything in this crate is deliberately tiny and dependency-free: it is
//! the vocabulary spoken by every other crate in the workspace.

pub mod error;
pub mod ids;
pub mod sync;

pub use error::{QsError, QsResult};
pub use ids::{ClientId, FrameId, Lsn, Oid, PageId, TxnId, VAddr};

/// Size of a database page and of a virtual-memory frame, in bytes.
///
/// The paper uses 8 KB pages throughout ("Virtual memory frames are
/// contiguous and uniform in size (8 Kb)").
pub const PAGE_SIZE: usize = 8192;

/// Size of an ESM log-record header in bytes.
///
/// §3.2.2: "each ESM log record contains a header of approximately 50
/// bytes". The region-combining rule of the diff algorithm ("emit separate
/// records iff `2 * gap > H`") is stated in terms of this constant.
pub const LOG_HEADER_SIZE: usize = 50;

/// Machine word used by the paper's examples (1 word = 4 bytes).
pub const WORD: usize = 4;

/// Number of pages that fit in `bytes` bytes, rounding up.
#[inline]
pub fn pages_for(bytes: usize) -> usize {
    bytes.div_ceil(PAGE_SIZE)
}

/// Convert a number of 8 KB pages to megabytes (floating point, for reports).
#[inline]
pub fn pages_to_mb(pages: usize) -> f64 {
    (pages * PAGE_SIZE) as f64 / (1024.0 * 1024.0)
}

/// Convert megabytes to a whole number of 8 KB pages (rounding down).
#[inline]
pub fn mb_to_pages(mb: f64) -> usize {
    ((mb * 1024.0 * 1024.0) / PAGE_SIZE as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_size_is_8k() {
        assert_eq!(PAGE_SIZE, 8 * 1024);
    }

    #[test]
    fn pages_for_rounds_up() {
        assert_eq!(pages_for(0), 0);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(PAGE_SIZE), 1);
        assert_eq!(pages_for(PAGE_SIZE + 1), 2);
        assert_eq!(pages_for(3 * PAGE_SIZE - 1), 3);
    }

    #[test]
    fn mb_round_trip() {
        // 4 MB recovery buffer = 512 pages of 8 KB.
        assert_eq!(mb_to_pages(4.0), 512);
        assert!((pages_to_mb(512) - 4.0).abs() < 1e-9);
        // 0.5 MB = 64 pages (constrained-cache experiments).
        assert_eq!(mb_to_pages(0.5), 64);
    }
}
