//! Error type shared by every crate in the workspace.

use crate::ids::{Oid, PageId, TxnId};
use std::fmt;

/// Result alias used across the workspace.
pub type QsResult<T> = Result<T, QsError>;

/// All the ways a storage / recovery operation can fail.
///
/// The variants are deliberately descriptive rather than generic: most of
/// them correspond to a specific protocol violation or invariant in the
/// paper (e.g. `LogBeforePageViolation` is ESM's "log records for a page are
/// always sent back to the server before the page itself").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QsError {
    /// Access to a page id past the end of the volume.
    PageOutOfBounds { page: PageId, volume_pages: usize },
    /// A slot lookup found no live object.
    NoSuchObject(Oid),
    /// Slotted page has no room for the requested object.
    PageFull { page: PageId, need: usize, free: usize },
    /// Object larger than the maximum a slotted 8 KB page can hold.
    ObjectTooLarge { size: usize, max: usize },
    /// Buffer pool cannot evict anything (all pages pinned).
    BufferPoolExhausted { capacity: usize },
    /// Lock request would deadlock or conflicts in no-wait mode.
    LockConflict { page: PageId, holder: TxnId, requester: TxnId },
    /// Operation issued for a transaction the server does not consider active.
    NoSuchTransaction(TxnId),
    /// Transaction already finished (commit/abort called twice, etc.).
    TransactionNotActive(TxnId),
    /// Circular log ran out of reclaimable space.
    LogFull { capacity: usize, need: usize },
    /// A log record failed to decode (corrupt bytes, bad tag, short read).
    LogCorrupt { detail: String },
    /// Write attempted through a read-only or unmapped virtual frame with no
    /// fault handler installed to service it.
    ProtectionFault { detail: String },
    /// Virtual address does not fall inside any mapped frame.
    UnmappedAddress { detail: String },
    /// Access spans a frame boundary (the MMU, like real hardware protection,
    /// is per-page).
    CrossesFrameBoundary,
    /// The client asked the server for something the server cannot honor in
    /// its current state (protocol bug).
    Protocol { detail: String },
    /// ESM rule: a dirty page may not be shipped before its log records.
    LogBeforePageViolation(PageId),
    /// Recovery/restart found an inconsistency it cannot repair.
    RecoveryFailed { detail: String },
    /// The simulated server is crashed; volatile operations are unavailable.
    ServerCrashed,
    /// Catch-all for configuration mistakes in the harness.
    Config { detail: String },
}

impl fmt::Display for QsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QsError::PageOutOfBounds { page, volume_pages } => {
                write!(f, "page {page} out of bounds (volume has {volume_pages} pages)")
            }
            QsError::NoSuchObject(oid) => write!(f, "no such object {oid:?}"),
            QsError::PageFull { page, need, free } => {
                write!(f, "page {page} full: need {need} bytes, {free} free")
            }
            QsError::ObjectTooLarge { size, max } => {
                write!(f, "object of {size} bytes exceeds page capacity {max}")
            }
            QsError::BufferPoolExhausted { capacity } => {
                write!(f, "buffer pool exhausted: all {capacity} frames pinned")
            }
            QsError::LockConflict { page, holder, requester } => {
                write!(f, "lock conflict on {page}: held by {holder}, wanted by {requester}")
            }
            QsError::NoSuchTransaction(t) => write!(f, "no such transaction {t}"),
            QsError::TransactionNotActive(t) => write!(f, "transaction {t} is not active"),
            QsError::LogFull { capacity, need } => {
                write!(f, "log full: capacity {capacity} bytes, need {need} more")
            }
            QsError::LogCorrupt { detail } => write!(f, "log corrupt: {detail}"),
            QsError::ProtectionFault { detail } => write!(f, "protection fault: {detail}"),
            QsError::UnmappedAddress { detail } => write!(f, "unmapped address: {detail}"),
            QsError::CrossesFrameBoundary => write!(f, "access crosses a frame boundary"),
            QsError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            QsError::LogBeforePageViolation(p) => {
                write!(f, "page {p} shipped before its log records")
            }
            QsError::RecoveryFailed { detail } => write!(f, "recovery failed: {detail}"),
            QsError::ServerCrashed => write!(f, "server is crashed"),
            QsError::Config { detail } => write!(f, "configuration error: {detail}"),
        }
    }
}

impl std::error::Error for QsError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::PageId;

    #[test]
    fn display_is_informative() {
        let e = QsError::PageFull { page: PageId(3), need: 100, free: 10 };
        let s = e.to_string();
        assert!(s.contains("P3") && s.contains("100") && s.contains("10"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(QsError::ServerCrashed);
        assert_eq!(e.to_string(), "server is crashed");
    }
}
