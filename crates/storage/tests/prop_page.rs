//! Fuzzed slotted-page operations against a simple model.
//!
//! Formerly a proptest suite; now driven by `qs-prng` under fixed seeds so
//! the exact same cases replay on every run, with no external crates.

use qs_prng::Prng;
use qs_storage::{Page, MAX_OBJECT_SIZE};
use qs_types::PageId;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Free(u16),
    Write(u16, u8),
    Compact,
}

/// Weighted op mix matching the original strategy: 4 insert : 2 free :
/// 2 write : 1 compact.
fn random_ops(rng: &mut Prng) -> Vec<Op> {
    let n = rng.gen_range(0..120);
    (0..n)
        .map(|_| match rng.gen_range(0..9) {
            0..=3 => {
                let n = rng.gen_range(1..300);
                Op::Insert(rng.bytes(n))
            }
            4 | 5 => Op::Free((rng.next_u32() % 64) as u16),
            6 | 7 => Op::Write((rng.next_u32() % 64) as u16, (rng.next_u32() & 0xFF) as u8),
            _ => Op::Compact,
        })
        .collect()
}

#[test]
fn page_matches_model() {
    const PID: PageId = PageId(1);
    let mut rng = Prng::seed_from_u64(0x5EED_9A6E);
    for case in 0..192 {
        let mut page = Page::new();
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in random_ops(&mut rng) {
            match op {
                Op::Insert(data) => {
                    // Errors (full / oversized) leave the model unchanged.
                    if let Ok(slot) = page.insert(PID, &data) {
                        assert!(data.len() <= MAX_OBJECT_SIZE, "case {case}");
                        assert!(!model.contains_key(&slot), "case {case}: slot reuse of live slot");
                        model.insert(slot, data);
                    }
                }
                Op::Free(slot) => {
                    let ours = page.free(PID, slot).is_ok();
                    let model_had = model.remove(&slot).is_some();
                    assert_eq!(ours, model_had, "case {case}");
                }
                Op::Write(slot, val) => {
                    if let Some(data) = model.get_mut(&slot) {
                        let new: Vec<u8> = data.iter().map(|_| val).collect();
                        page.write(PID, slot, &new).unwrap();
                        *data = new;
                    } else {
                        assert!(page.write(PID, slot, &[0]).is_err(), "case {case}");
                    }
                }
                Op::Compact => page.compact(),
            }
            // Full consistency check after every op.
            for (&slot, data) in &model {
                assert_eq!(page.object(PID, slot).unwrap(), &data[..], "case {case}");
            }
            let live: usize = model.values().map(|d| d.len()).sum();
            assert_eq!(page.live_bytes(), live, "case {case}");
        }
    }
}
