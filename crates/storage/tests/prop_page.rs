//! Fuzzed slotted-page operations against a simple model.

use proptest::prelude::*;
use qs_storage::{Page, MAX_OBJECT_SIZE};
use qs_types::PageId;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Free(u16),
    Write(u16, u8),
    Compact,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => proptest::collection::vec(any::<u8>(), 1..300).prop_map(Op::Insert),
            2 => any::<u16>().prop_map(|s| Op::Free(s % 64)),
            2 => (any::<u16>(), any::<u8>()).prop_map(|(s, v)| Op::Write(s % 64, v)),
            1 => Just(Op::Compact),
        ],
        0..120,
    )
}

proptest! {
    #[test]
    fn page_matches_model(ops in ops()) {
        const PID: PageId = PageId(1);
        let mut page = Page::new();
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(data) => {
                    // Errors (full / oversized) leave the model unchanged.
                    if let Ok(slot) = page.insert(PID, &data) {
                        prop_assert!(data.len() <= MAX_OBJECT_SIZE);
                        prop_assert!(!model.contains_key(&slot), "slot reuse of live slot");
                        model.insert(slot, data);
                    }
                }
                Op::Free(slot) => {
                    let ours = page.free(PID, slot).is_ok();
                    let model_had = model.remove(&slot).is_some();
                    prop_assert_eq!(ours, model_had);
                }
                Op::Write(slot, val) => {
                    if let Some(data) = model.get_mut(&slot) {
                        let new: Vec<u8> = data.iter().map(|_| val).collect();
                        page.write(PID, slot, &new).unwrap();
                        *data = new;
                    } else {
                        prop_assert!(page.write(PID, slot, &[0]).is_err());
                    }
                }
                Op::Compact => page.compact(),
            }
            // Full consistency check after every op.
            for (&slot, data) in &model {
                prop_assert_eq!(page.object(PID, slot).unwrap(), &data[..]);
            }
            let live: usize = model.values().map(|d| d.len()).sum();
            prop_assert_eq!(page.live_bytes(), live);
        }
    }
}
