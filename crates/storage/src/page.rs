//! The 8 KB slotted page.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! 0        8        10       12      16                              8192
//! +--------+--------+--------+-------+------- objects → ... ← slots -+
//! | pageLSN| nslots | freeOff| rsvd  |                                |
//! +--------+--------+--------+-------+--------------------------------+
//! ```
//!
//! Object data grows upward from [`PAGE_HEADER_SIZE`]; the slot directory
//! grows downward from the end of the page, 4 bytes per slot
//! (`offset: u16, len: u16`). A slot with `len == 0` is free.
//!
//! QuickStore maps pages into application frames, so **object offsets are
//! stable once allocated**: compaction is provided (and tested) but the
//! QuickStore runtime never compacts a page that is mapped, because
//! swizzled pointers embed offsets.

use qs_types::{Lsn, PageId, QsError, QsResult, PAGE_SIZE};

/// Bytes reserved at the front of every page for the header.
pub const PAGE_HEADER_SIZE: usize = 16;
/// Bytes per slot-directory entry.
const SLOT_SIZE: usize = 4;
/// Largest object a page can store (one slot entry + header overhead).
pub const MAX_OBJECT_SIZE: usize = PAGE_SIZE - PAGE_HEADER_SIZE - SLOT_SIZE;

const OFF_LSN: usize = 0;
const OFF_NSLOTS: usize = 8;
const OFF_FREE: usize = 10;

/// One 8 KB page. Boxed internally so moves are cheap and pools can hold
/// thousands without blowing the stack.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("lsn", &self.lsn())
            .field("nslots", &self.num_slots())
            .field("free", &self.free_space())
            .finish()
    }
}

impl Page {
    /// A fresh, formatted, empty page.
    pub fn new() -> Page {
        let mut p = Page { buf: Box::new([0u8; PAGE_SIZE]) };
        p.format();
        p
    }

    /// (Re)format: zero slots, data area empty. Does not clear the LSN.
    pub fn format(&mut self) {
        self.set_u16(OFF_NSLOTS, 0);
        self.set_u16(OFF_FREE, PAGE_HEADER_SIZE as u16);
    }

    /// Construct from raw bytes (e.g. read back from a volume or the log).
    pub fn from_bytes(bytes: &[u8]) -> QsResult<Page> {
        if bytes.len() != PAGE_SIZE {
            return Err(QsError::LogCorrupt {
                detail: format!("page image of {} bytes, expected {PAGE_SIZE}", bytes.len()),
            });
        }
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        buf.copy_from_slice(bytes);
        Ok(Page { buf })
    }

    /// The full raw image (for shipping / logging whole pages).
    #[inline]
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.buf
    }

    /// Mutable raw image. Callers are trusted to preserve the layout; this
    /// is how mapped frames and redo application write through.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.buf
    }

    // -- header ------------------------------------------------------------

    /// ARIES pageLSN: the LSN of the last log record applied to this page.
    pub fn lsn(&self) -> Lsn {
        Lsn(u64::from_le_bytes(self.buf[OFF_LSN..OFF_LSN + 8].try_into().unwrap()))
    }

    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.buf[OFF_LSN..OFF_LSN + 8].copy_from_slice(&lsn.0.to_le_bytes());
    }

    pub fn num_slots(&self) -> u16 {
        self.get_u16(OFF_NSLOTS)
    }

    fn free_off(&self) -> usize {
        self.get_u16(OFF_FREE) as usize
    }

    fn slot_table_start(&self) -> usize {
        PAGE_SIZE - self.num_slots() as usize * SLOT_SIZE
    }

    /// Contiguous free bytes between the data area and the slot directory.
    pub fn free_space(&self) -> usize {
        self.slot_table_start() - self.free_off()
    }

    // -- slot directory ------------------------------------------------------

    fn slot_entry(&self, slot: u16) -> Option<(usize, usize)> {
        if slot >= self.num_slots() {
            return None;
        }
        let at = PAGE_SIZE - (slot as usize + 1) * SLOT_SIZE;
        let off = self.get_u16(at) as usize;
        let len = self.get_u16(at + 2) as usize;
        if len == 0 {
            None
        } else {
            Some((off, len))
        }
    }

    fn set_slot_entry(&mut self, slot: u16, off: u16, len: u16) {
        let at = PAGE_SIZE - (slot as usize + 1) * SLOT_SIZE;
        self.set_u16(at, off);
        self.set_u16(at + 2, len);
    }

    /// Insert an object, returning its slot. Fails with [`QsError::PageFull`]
    /// if there is not enough contiguous free space (no implicit compaction:
    /// see the module docs for why).
    pub fn insert(&mut self, page_id: PageId, data: &[u8]) -> QsResult<u16> {
        if data.is_empty() || data.len() > MAX_OBJECT_SIZE {
            return Err(QsError::ObjectTooLarge { size: data.len(), max: MAX_OBJECT_SIZE });
        }
        // Reuse a freed slot if one exists, else grow the directory.
        let nslots = self.num_slots();
        let reuse = (0..nslots).find(|&s| self.slot_entry(s).is_none());
        let need_slot_bytes = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if data.len() + need_slot_bytes > self.free_space() {
            return Err(QsError::PageFull {
                page: page_id,
                need: data.len() + need_slot_bytes,
                free: self.free_space(),
            });
        }
        let off = self.free_off();
        self.buf[off..off + data.len()].copy_from_slice(data);
        self.set_u16(OFF_FREE, (off + data.len()) as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                self.set_u16(OFF_NSLOTS, nslots + 1);
                nslots
            }
        };
        self.set_slot_entry(slot, off as u16, data.len() as u16);
        Ok(slot)
    }

    /// Read an object.
    pub fn object(&self, page_id: PageId, slot: u16) -> QsResult<&[u8]> {
        match self.slot_entry(slot) {
            Some((off, len)) => Ok(&self.buf[off..off + len]),
            None => Err(QsError::NoSuchObject(qs_types::Oid::new(page_id, slot))),
        }
    }

    /// Mutable view of an object (in-place update — this is what a mapped
    /// frame write ultimately performs).
    pub fn object_mut(&mut self, page_id: PageId, slot: u16) -> QsResult<&mut [u8]> {
        match self.slot_entry(slot) {
            Some((off, len)) => Ok(&mut self.buf[off..off + len]),
            None => Err(QsError::NoSuchObject(qs_types::Oid::new(page_id, slot))),
        }
    }

    /// Byte offset of an object within the page (for virtual-address
    /// computation when the page is mapped into a frame).
    pub fn object_offset(&self, page_id: PageId, slot: u16) -> QsResult<(usize, usize)> {
        self.slot_entry(slot).ok_or(QsError::NoSuchObject(qs_types::Oid::new(page_id, slot)))
    }

    /// Overwrite an object with same-length data.
    pub fn write(&mut self, page_id: PageId, slot: u16, data: &[u8]) -> QsResult<()> {
        let dst = self.object_mut(page_id, slot)?;
        if dst.len() != data.len() {
            return Err(QsError::Protocol {
                detail: format!(
                    "in-place write of {} bytes over object of {} bytes",
                    data.len(),
                    dst.len()
                ),
            });
        }
        dst.copy_from_slice(data);
        Ok(())
    }

    /// Free a slot. Space is not reclaimed until [`Page::compact`].
    pub fn free(&mut self, page_id: PageId, slot: u16) -> QsResult<()> {
        if self.slot_entry(slot).is_none() {
            return Err(QsError::NoSuchObject(qs_types::Oid::new(page_id, slot)));
        }
        self.set_slot_entry(slot, 0, 0);
        Ok(())
    }

    /// Slide live objects together, preserving slot numbers (offsets move!).
    /// Never called on a mapped page.
    pub fn compact(&mut self) {
        let nslots = self.num_slots();
        let mut live: Vec<(u16, Vec<u8>)> = Vec::new();
        for s in 0..nslots {
            if let Some((off, len)) = self.slot_entry(s) {
                live.push((s, self.buf[off..off + len].to_vec()));
            }
        }
        let mut off = PAGE_HEADER_SIZE;
        for (s, data) in &live {
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot_entry(*s, off as u16, data.len() as u16);
            off += data.len();
        }
        self.set_u16(OFF_FREE, off as u16);
    }

    /// Iterate (slot, offset, len) of live objects — the diff algorithm
    /// walks this to diff object-by-object (log records cannot span
    /// objects, §3.2.2).
    pub fn live_objects(&self) -> impl Iterator<Item = (u16, usize, usize)> + '_ {
        (0..self.num_slots()).filter_map(move |s| self.slot_entry(s).map(|(o, l)| (s, o, l)))
    }

    /// Total bytes of live object data.
    pub fn live_bytes(&self) -> usize {
        self.live_objects().map(|(_, _, l)| l).sum()
    }

    // -- little-endian helpers ----------------------------------------------

    fn get_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.buf[at], self.buf[at + 1]])
    }

    fn set_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PID: PageId = PageId(42);

    #[test]
    fn insert_and_read_round_trip() {
        let mut p = Page::new();
        let s1 = p.insert(PID, b"hello").unwrap();
        let s2 = p.insert(PID, b"world!").unwrap();
        assert_eq!(p.object(PID, s1).unwrap(), b"hello");
        assert_eq!(p.object(PID, s2).unwrap(), b"world!");
        assert_eq!(p.num_slots(), 2);
    }

    #[test]
    fn lsn_round_trip_survives_inserts() {
        let mut p = Page::new();
        p.set_lsn(Lsn(0xDEAD_BEEF));
        p.insert(PID, &[1; 100]).unwrap();
        assert_eq!(p.lsn(), Lsn(0xDEAD_BEEF));
    }

    #[test]
    fn in_place_write() {
        let mut p = Page::new();
        let s = p.insert(PID, &[0u8; 8]).unwrap();
        p.write(PID, s, &[9u8; 8]).unwrap();
        assert_eq!(p.object(PID, s).unwrap(), &[9u8; 8]);
        // Length mismatch is rejected.
        assert!(p.write(PID, s, &[1u8; 4]).is_err());
    }

    #[test]
    fn free_and_slot_reuse() {
        let mut p = Page::new();
        let s0 = p.insert(PID, &[1; 10]).unwrap();
        let _s1 = p.insert(PID, &[2; 10]).unwrap();
        p.free(PID, s0).unwrap();
        assert!(p.object(PID, s0).is_err());
        let s2 = p.insert(PID, &[3; 10]).unwrap();
        assert_eq!(s2, s0, "freed slot is reused");
        assert_eq!(p.num_slots(), 2);
    }

    #[test]
    fn double_free_is_error() {
        let mut p = Page::new();
        let s = p.insert(PID, &[1; 4]).unwrap();
        p.free(PID, s).unwrap();
        assert!(p.free(PID, s).is_err());
    }

    #[test]
    fn page_full_reports_need_and_free() {
        let mut p = Page::new();
        let big = vec![7u8; MAX_OBJECT_SIZE];
        p.insert(PID, &big).unwrap();
        match p.insert(PID, &[1]) {
            Err(QsError::PageFull { free, .. }) => assert_eq!(free, 0),
            other => panic!("expected PageFull, got {other:?}"),
        }
    }

    #[test]
    fn oversized_object_rejected() {
        let mut p = Page::new();
        assert!(matches!(
            p.insert(PID, &vec![0u8; MAX_OBJECT_SIZE + 1]),
            Err(QsError::ObjectTooLarge { .. })
        ));
        assert!(matches!(p.insert(PID, &[]), Err(QsError::ObjectTooLarge { .. })));
    }

    #[test]
    fn compact_reclaims_space_and_preserves_slots() {
        let mut p = Page::new();
        let s0 = p.insert(PID, &[1; 1000]).unwrap();
        let s1 = p.insert(PID, &[2; 1000]).unwrap();
        let s2 = p.insert(PID, &[3; 1000]).unwrap();
        let before = p.free_space();
        p.free(PID, s1).unwrap();
        p.compact();
        assert_eq!(p.free_space(), before + 1000);
        assert_eq!(p.object(PID, s0).unwrap(), &[1u8; 1000][..]);
        assert_eq!(p.object(PID, s2).unwrap(), &[3u8; 1000][..]);
        assert!(p.object(PID, s1).is_err());
    }

    #[test]
    fn live_objects_iterates_in_slot_order() {
        let mut p = Page::new();
        p.insert(PID, &[1; 8]).unwrap();
        let s1 = p.insert(PID, &[2; 16]).unwrap();
        p.insert(PID, &[3; 24]).unwrap();
        p.free(PID, s1).unwrap();
        let v: Vec<_> = p.live_objects().map(|(s, _, l)| (s, l)).collect();
        assert_eq!(v, vec![(0, 8), (2, 24)]);
        assert_eq!(p.live_bytes(), 32);
    }

    #[test]
    fn from_bytes_round_trip() {
        let mut p = Page::new();
        p.set_lsn(Lsn(5));
        p.insert(PID, b"abc").unwrap();
        let q = Page::from_bytes(p.bytes()).unwrap();
        assert_eq!(p, q);
        assert!(Page::from_bytes(&[0u8; 17]).is_err());
    }

    #[test]
    fn fills_to_capacity_with_small_objects() {
        let mut p = Page::new();
        let mut n = 0usize;
        while p.insert(PID, &[0xAB; 60]).is_ok() {
            n += 1;
        }
        // 60-byte objects + 4-byte slots = 64 bytes each; (8192-16)/64 = 127.
        assert_eq!(n, (PAGE_SIZE - PAGE_HEADER_SIZE) / 64);
    }
}
