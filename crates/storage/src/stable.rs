//! Stable media: the durable layer that survives a simulated crash.
//!
//! The paper's server used raw disk partitions (a Sun1.3G for the database,
//! a Sun0424 for the transaction log). Here a [`StableMedia`] is a flat
//! byte array with explicit read/write; a crash in the test harness drops
//! every in-memory structure *except* the media, then hands the same media
//! to a freshly constructed server — exactly what a reboot does.
//!
//! [`MemDisk`] is the default (deterministic, fast). [`FileDisk`] backs the
//! same interface with a real file for the examples that want durable state
//! across process runs.

use qs_types::sync::{Mutex, RwLock};
use qs_types::{QsError, QsResult};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// A crash-surviving, randomly addressable byte device.
pub trait StableMedia: Send + Sync {
    /// Total capacity in bytes.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read `buf.len()` bytes starting at `off`.
    fn read_at(&self, off: usize, buf: &mut [u8]) -> QsResult<()>;

    /// Write `buf` starting at `off`. Durable once this returns (the engine
    /// above decides *when* to call this — that is the WAL discipline).
    fn write_at(&self, off: usize, buf: &[u8]) -> QsResult<()>;

    /// Flush any buffering the medium itself does (no-op for `MemDisk`).
    fn sync(&self) -> QsResult<()>;
}

fn check_bounds(len: usize, off: usize, n: usize) -> QsResult<()> {
    if off.checked_add(n).is_none_or(|end| end > len) {
        return Err(QsError::Protocol {
            detail: format!("media access [{off}, {off}+{n}) out of bounds (len {len})"),
        });
    }
    Ok(())
}

/// In-memory stable medium.
pub struct MemDisk {
    data: RwLock<Vec<u8>>,
    /// Wall-clock sleep per `sync()` call — zero by default so the normal
    /// figure runs stay instantaneous. The contention benchmarks set this
    /// to model a real disk's synchronous-write latency, which is what
    /// group commit amortizes.
    sync_latency: std::time::Duration,
    /// Wall-clock sleep per `write_at()` call — zero by default. The
    /// checkpoint benchmark sets this on the *data* disk so a dirty-page
    /// flush costs device time per page, which is what a quiesced
    /// checkpoint serializes behind and an elevator drain overlaps. The
    /// sleep happens under the write lock: one spindle, one arm.
    write_latency: std::time::Duration,
}

impl MemDisk {
    /// A zero-filled device of `len` bytes.
    pub fn new(len: usize) -> MemDisk {
        MemDisk::with_latencies(len, std::time::Duration::ZERO, std::time::Duration::ZERO)
    }

    /// A zero-filled device whose `sync()` blocks for `latency` wall-clock
    /// time, so commit forces cost something real to batch away.
    pub fn with_sync_latency(len: usize, latency: std::time::Duration) -> MemDisk {
        MemDisk::with_latencies(len, latency, std::time::Duration::ZERO)
    }

    /// A zero-filled device with both a `sync()` latency and a per-call
    /// `write_at()` latency.
    pub fn with_latencies(
        len: usize,
        sync_latency: std::time::Duration,
        write_latency: std::time::Duration,
    ) -> MemDisk {
        MemDisk { data: RwLock::new(vec![0u8; len]), sync_latency, write_latency }
    }
}

impl StableMedia for MemDisk {
    fn len(&self) -> usize {
        self.data.read().len()
    }

    fn read_at(&self, off: usize, buf: &mut [u8]) -> QsResult<()> {
        let d = self.data.read();
        check_bounds(d.len(), off, buf.len())?;
        buf.copy_from_slice(&d[off..off + buf.len()]);
        Ok(())
    }

    fn write_at(&self, off: usize, buf: &[u8]) -> QsResult<()> {
        let mut d = self.data.write();
        check_bounds(d.len(), off, buf.len())?;
        if !self.write_latency.is_zero() {
            std::thread::sleep(self.write_latency);
        }
        d[off..off + buf.len()].copy_from_slice(buf);
        Ok(())
    }

    fn sync(&self) -> QsResult<()> {
        if !self.sync_latency.is_zero() {
            std::thread::sleep(self.sync_latency);
        }
        Ok(())
    }
}

/// File-backed stable medium (for examples that persist across processes).
pub struct FileDisk {
    file: Mutex<File>,
    len: usize,
}

impl FileDisk {
    /// Create or open `path`, sized to exactly `len` bytes.
    pub fn open(path: &Path, len: usize) -> QsResult<FileDisk> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        file.set_len(len as u64).map_err(io_err)?;
        Ok(FileDisk { file: Mutex::new(file), len })
    }
}

fn io_err(e: std::io::Error) -> QsError {
    QsError::Protocol { detail: format!("io error: {e}") }
}

impl StableMedia for FileDisk {
    fn len(&self) -> usize {
        self.len
    }

    fn read_at(&self, off: usize, buf: &mut [u8]) -> QsResult<()> {
        check_bounds(self.len, off, buf.len())?;
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(off as u64)).map_err(io_err)?;
        f.read_exact(buf).map_err(io_err)
    }

    fn write_at(&self, off: usize, buf: &[u8]) -> QsResult<()> {
        check_bounds(self.len, off, buf.len())?;
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(off as u64)).map_err(io_err)?;
        f.write_all(buf).map_err(io_err)
    }

    fn sync(&self) -> QsResult<()> {
        self.file.lock().sync_data().map_err(io_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memdisk_read_write() {
        let d = MemDisk::new(64);
        d.write_at(10, b"abcdef").unwrap();
        let mut buf = [0u8; 6];
        d.read_at(10, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
    }

    #[test]
    fn memdisk_bounds_checked() {
        let d = MemDisk::new(16);
        assert!(d.write_at(12, &[0u8; 8]).is_err());
        let mut buf = [0u8; 8];
        assert!(d.read_at(usize::MAX, &mut buf).is_err());
        // Exactly at the end is fine.
        d.write_at(8, &[1u8; 8]).unwrap();
    }

    #[test]
    fn memdisk_sync_latency_sleeps() {
        let d = MemDisk::with_sync_latency(16, std::time::Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        d.sync().unwrap();
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
        // Default construction stays instantaneous (no sleep path).
        assert!(MemDisk::new(16).sync_latency.is_zero());
    }

    #[test]
    fn memdisk_write_latency_sleeps() {
        let lat = std::time::Duration::from_millis(5);
        let d = MemDisk::with_latencies(16, std::time::Duration::ZERO, lat);
        let t0 = std::time::Instant::now();
        d.write_at(0, &[1u8; 4]).unwrap();
        assert!(t0.elapsed() >= lat);
        // Sync stays free; only writes pay.
        let t0 = std::time::Instant::now();
        d.sync().unwrap();
        assert!(t0.elapsed() < lat);
        assert!(MemDisk::new(16).write_latency.is_zero());
    }

    #[test]
    fn memdisk_initially_zeroed() {
        let d = MemDisk::new(32);
        let mut buf = [9u8; 32];
        d.read_at(0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 32]);
    }

    #[test]
    fn filedisk_round_trip() {
        let dir = std::env::temp_dir().join(format!("qs-filedisk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disk.bin");
        {
            let d = FileDisk::open(&path, 128).unwrap();
            d.write_at(100, b"persist").unwrap();
            d.sync().unwrap();
        }
        {
            let d = FileDisk::open(&path, 128).unwrap();
            let mut buf = [0u8; 7];
            d.read_at(100, &mut buf).unwrap();
            assert_eq!(&buf, b"persist");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trait_object_usable() {
        let d: Box<dyn StableMedia> = Box::new(MemDisk::new(8));
        assert_eq!(d.len(), 8);
        assert!(!d.is_empty());
    }
}
