//! Storage substrate: 8 KB slotted pages, stable (crash-surviving) media,
//! and page volumes.
//!
//! Crash semantics in this reproduction are drawn at the media boundary:
//! anything written to a [`stable::MemDisk`] (or [`stable::FileDisk`]) is
//! durable; everything above it — buffer pools, lock tables, the WPL table —
//! is volatile and vanishes when a simulated crash drops the server struct.
//! This is exactly the paper's model of raw disk partitions under a
//! STEAL/NO-FORCE buffer manager.

pub mod page;
pub mod stable;
pub mod volume;

pub use page::{Page, MAX_OBJECT_SIZE, PAGE_HEADER_SIZE};
pub use stable::{FileDisk, MemDisk, StableMedia};
pub use volume::Volume;
