//! A volume: an array of pages on a stable medium, plus a tiny durable
//! header recording how many pages have been allocated.
//!
//! Layout on the medium: one header page (allocation count + magic) followed
//! by `capacity` data pages. Allocation is append-only, as in ESM volumes;
//! page allocation during normal operation is additionally logged by the
//! server so that restart can reconcile a header that lags the log.

use crate::page::Page;
use crate::stable::StableMedia;
use qs_types::{PageId, QsError, QsResult, PAGE_SIZE};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const MAGIC: u64 = 0x51_5356_4F4C_u64; // "QSVOL"

/// A page array on stable storage.
pub struct Volume {
    media: Arc<dyn StableMedia>,
    capacity: usize,
    allocated: AtomicUsize,
}

impl Volume {
    /// Bytes of stable storage needed for a volume of `capacity` pages.
    pub fn required_bytes(capacity: usize) -> usize {
        (capacity + 1) * PAGE_SIZE
    }

    /// Format a fresh volume on `media`.
    pub fn format(media: Arc<dyn StableMedia>, capacity: usize) -> QsResult<Volume> {
        if media.len() < Self::required_bytes(capacity) {
            return Err(QsError::Config {
                detail: format!(
                    "media of {} bytes too small for {} pages (+header)",
                    media.len(),
                    capacity
                ),
            });
        }
        let v = Volume { media, capacity, allocated: AtomicUsize::new(0) };
        v.write_header()?;
        Ok(v)
    }

    /// Re-open a previously formatted volume (after a crash/restart).
    pub fn open(media: Arc<dyn StableMedia>) -> QsResult<Volume> {
        let mut hdr = [0u8; 24];
        media.read_at(0, &mut hdr)?;
        let magic = u64::from_le_bytes(hdr[0..8].try_into().unwrap());
        if magic != MAGIC {
            return Err(QsError::RecoveryFailed { detail: "volume header magic mismatch".into() });
        }
        let capacity = u64::from_le_bytes(hdr[8..16].try_into().unwrap()) as usize;
        let allocated = u64::from_le_bytes(hdr[16..24].try_into().unwrap()) as usize;
        if media.len() < Self::required_bytes(capacity) || allocated > capacity {
            return Err(QsError::RecoveryFailed { detail: "volume header inconsistent".into() });
        }
        Ok(Volume { media, capacity, allocated: AtomicUsize::new(allocated) })
    }

    fn write_header(&self) -> QsResult<()> {
        let mut hdr = [0u8; 24];
        hdr[0..8].copy_from_slice(&MAGIC.to_le_bytes());
        hdr[8..16].copy_from_slice(&(self.capacity as u64).to_le_bytes());
        hdr[16..24].copy_from_slice(&(self.allocated.load(Ordering::SeqCst) as u64).to_le_bytes());
        self.media.write_at(0, &hdr)
    }

    /// Persist the allocation count (called at checkpoint/commit points).
    pub fn sync_header(&self) -> QsResult<()> {
        self.write_header()?;
        self.media.sync()
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages allocated so far.
    pub fn allocated(&self) -> usize {
        self.allocated.load(Ordering::SeqCst)
    }

    fn byte_offset(&self, page: PageId) -> QsResult<usize> {
        if page.index() >= self.capacity {
            return Err(QsError::PageOutOfBounds { page, volume_pages: self.capacity });
        }
        Ok((page.index() + 1) * PAGE_SIZE)
    }

    /// Allocate the next page. The page's on-media content is whatever was
    /// there (zeroes on a fresh volume); callers format it.
    pub fn allocate(&self) -> QsResult<PageId> {
        let idx = self.allocated.fetch_add(1, Ordering::SeqCst);
        if idx >= self.capacity {
            self.allocated.store(self.capacity, Ordering::SeqCst);
            return Err(QsError::PageOutOfBounds {
                page: PageId(idx as u32),
                volume_pages: self.capacity,
            });
        }
        Ok(PageId(idx as u32))
    }

    /// Force the allocation count to at least `n` (restart reconciliation:
    /// the log may record allocations the header missed).
    pub fn ensure_allocated(&self, n: usize) -> QsResult<()> {
        if n > self.capacity {
            return Err(QsError::PageOutOfBounds {
                page: PageId(n as u32),
                volume_pages: self.capacity,
            });
        }
        self.allocated.fetch_max(n, Ordering::SeqCst);
        Ok(())
    }

    /// Read a page from the permanent location (the caller meters disk I/O).
    pub fn read_page(&self, page: PageId) -> QsResult<Page> {
        let off = self.byte_offset(page)?;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.media.read_at(off, &mut buf)?;
        Page::from_bytes(&buf)
    }

    /// Write a page to its permanent location.
    pub fn write_page(&self, page: PageId, p: &Page) -> QsResult<()> {
        let off = self.byte_offset(page)?;
        self.media.write_at(off, p.bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::MemDisk;

    fn vol(pages: usize) -> Volume {
        let media = Arc::new(MemDisk::new(Volume::required_bytes(pages)));
        Volume::format(media, pages).unwrap()
    }

    #[test]
    fn allocate_read_write() {
        let v = vol(4);
        let p0 = v.allocate().unwrap();
        let p1 = v.allocate().unwrap();
        assert_eq!(p0, PageId(0));
        assert_eq!(p1, PageId(1));
        let mut pg = Page::new();
        pg.insert(p1, b"stored").unwrap();
        v.write_page(p1, &pg).unwrap();
        let back = v.read_page(p1).unwrap();
        assert_eq!(back.object(p1, 0).unwrap(), b"stored");
    }

    #[test]
    fn allocation_exhausts_at_capacity() {
        let v = vol(2);
        v.allocate().unwrap();
        v.allocate().unwrap();
        assert!(v.allocate().is_err());
        assert_eq!(v.allocated(), 2);
    }

    #[test]
    fn out_of_bounds_page_rejected() {
        let v = vol(2);
        assert!(v.read_page(PageId(2)).is_err());
        assert!(v.write_page(PageId(99), &Page::new()).is_err());
    }

    #[test]
    fn reopen_after_crash_preserves_pages_and_count() {
        let media: Arc<dyn StableMedia> = Arc::new(MemDisk::new(Volume::required_bytes(3)));
        {
            let v = Volume::format(Arc::clone(&media), 3).unwrap();
            let p = v.allocate().unwrap();
            let mut pg = Page::new();
            pg.insert(p, b"survives").unwrap();
            v.write_page(p, &pg).unwrap();
            v.sync_header().unwrap();
            // v dropped here = crash of all volatile state.
        }
        let v = Volume::open(media).unwrap();
        assert_eq!(v.allocated(), 1);
        let pg = v.read_page(PageId(0)).unwrap();
        assert_eq!(pg.object(PageId(0), 0).unwrap(), b"survives");
    }

    #[test]
    fn open_rejects_unformatted_media() {
        let media: Arc<dyn StableMedia> = Arc::new(MemDisk::new(Volume::required_bytes(1)));
        assert!(Volume::open(media).is_err());
    }

    #[test]
    fn ensure_allocated_reconciles_upward_only() {
        let v = vol(5);
        v.allocate().unwrap();
        v.ensure_allocated(3).unwrap();
        assert_eq!(v.allocated(), 3);
        v.ensure_allocated(2).unwrap(); // no shrink
        assert_eq!(v.allocated(), 3);
        assert!(v.ensure_allocated(6).is_err());
    }
}
