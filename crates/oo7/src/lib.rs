//! The OO7 object-oriented database benchmark (Carey, DeWitt & Naughton,
//! SIGMOD 1993), as configured by the QuickStore recovery study (§4.1–4.2):
//!
//! * [`params`] — Table 1's *small* and *big* database parameters (note:
//!   deliberately non-standard OO7 — five modules, big modules with 2,000
//!   composite parts and an 8-level assembly hierarchy).
//! * [`schema`] — fixed-layout persistent objects: atomic parts,
//!   connections, composite parts, documents, assemblies, manuals.
//! * [`gen`] — the bulk loader: builds each module page-by-page with the
//!   clustering the paper relies on (a composite part's atomic graph is
//!   contiguous) and writes it through the server's unlogged load path.
//! * [`traversal`] — T1 (read-only sanity) and the update traversals
//!   T2A / T2B / T2C used in every experiment.

pub mod gen;
pub mod params;
pub mod schema;
pub mod traversal;

pub use gen::{generate, ModuleHandle, Oo7Db};
pub use params::{DbSize, Oo7Params};
pub use traversal::{t1, t2, T2Mode};
