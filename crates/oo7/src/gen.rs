//! The OO7 bulk loader.
//!
//! Builds each module with the physical clustering the paper's analysis
//! depends on: assemblies first, then each composite part's object cluster
//! (composite object, document, root atomic part, remaining atomic parts,
//! connections) laid out contiguously, then the manual. Because a
//! composite-part cluster (≈12 KB) exceeds one 8 KB page, every composite
//! part's root atomic part lands on its own page — which is what makes
//! T2A's sparse updates touch hundreds of distinct pages per traversal
//! (Figure 9).
//!
//! Loading bypasses the recovery system (the server's unlogged bulk path),
//! as a real database-generation utility would.

use crate::params::Oo7Params;
use crate::schema::{assembly, atomic, composite, connection, document};
use qs_esm::Server;
use qs_prng::Prng;
use qs_storage::Page;
use qs_types::{Oid, PageId, QsResult};

/// Largest manual chunk (manuals exceed the single-object page limit).
const MANUAL_CHUNK: usize = 8000;

/// Everything a client needs to traverse one module.
#[derive(Debug, Clone)]
pub struct ModuleHandle {
    pub index: usize,
    /// Root of the assembly hierarchy (a complex assembly).
    pub root_assembly: Oid,
    /// All composite-part objects (test access; traversals go through the
    /// assembly hierarchy).
    pub composite_parts: Vec<Oid>,
    /// The module's manual, as a chain of chunk objects.
    pub manual_chunks: Vec<Oid>,
    /// Pages this module occupies.
    pub pages: usize,
}

/// A generated database.
#[derive(Debug, Clone)]
pub struct Oo7Db {
    pub params: Oo7Params,
    pub modules: Vec<ModuleHandle>,
    /// Total pages across all modules.
    pub total_pages: usize,
}

impl Oo7Db {
    pub fn module_mb(&self) -> f64 {
        qs_types::pages_to_mb(self.modules.first().map(|m| m.pages).unwrap_or(0))
    }

    pub fn total_mb(&self) -> f64 {
        qs_types::pages_to_mb(self.total_pages)
    }
}

/// Sequential page packer driving the server's bulk-load path.
struct Packer<'a> {
    server: &'a Server,
    page: Page,
    pid: PageId,
    pages_written: usize,
}

impl<'a> Packer<'a> {
    fn new(server: &'a Server) -> QsResult<Packer<'a>> {
        let pid = server.bulk_allocate(1)?[0];
        Ok(Packer { server, page: Page::new(), pid, pages_written: 0 })
    }

    fn place(&mut self, data: &[u8]) -> QsResult<Oid> {
        match self.page.insert(self.pid, data) {
            Ok(slot) => Ok(Oid::new(self.pid, slot)),
            Err(_) => {
                self.flush()?;
                self.pid = self.server.bulk_allocate(1)?[0];
                self.page = Page::new();
                let slot = self.page.insert(self.pid, data)?;
                Ok(Oid::new(self.pid, slot))
            }
        }
    }

    fn flush(&mut self) -> QsResult<()> {
        self.server.bulk_write(self.pid, &self.page)?;
        self.pages_written += 1;
        Ok(())
    }
}

/// Dry-run packer: assigns object ids with identical placement logic.
struct Planner {
    page: Page,
    pid: PageId,
    next_pid: u32,
}

impl Planner {
    fn new(first_pid: u32) -> Planner {
        Planner { page: Page::new(), pid: PageId(first_pid), next_pid: first_pid + 1 }
    }

    fn place(&mut self, size: usize) -> Oid {
        let probe = vec![0u8; size];
        match self.page.insert(self.pid, &probe) {
            Ok(slot) => Oid::new(self.pid, slot),
            Err(_) => {
                self.pid = PageId(self.next_pid);
                self.next_pid += 1;
                self.page = Page::new();
                let slot = self.page.insert(self.pid, &probe).expect("fits in fresh page");
                Oid::new(self.pid, slot)
            }
        }
    }
}

/// Per-module structural randomness, fixed before materialization.
struct ModulePlan {
    /// Composite-part indices referenced by each base assembly.
    base_comp_choice: Vec<[usize; 3]>,
    /// Connection target atomic index for (comp, atomic, k).
    conn_target: Vec<Vec<[usize; 3]>>,
}

fn plan_randomness(p: &Oo7Params, seed: u64, module: usize) -> ModulePlan {
    let mut rng = Prng::seed_from_u64(seed ^ (module as u64).wrapping_mul(0x9E3779B97F4A7C15));
    let base_comp_choice = (0..p.base_assemblies())
        .map(|_| {
            [
                rng.gen_range(0..p.num_comp_per_module),
                rng.gen_range(0..p.num_comp_per_module),
                rng.gen_range(0..p.num_comp_per_module),
            ]
        })
        .collect();
    let n = p.num_atomic_per_comp;
    let conn_target = (0..p.num_comp_per_module)
        .map(|_| {
            (0..n)
                .map(|i| {
                    // First connection links to the next part (guaranteeing a
                    // connected graph, as OO7 does); the rest are random.
                    [(i + 1) % n, rng.gen_range(0..n), rng.gen_range(0..n)]
                })
                .collect()
        })
        .collect();
    ModulePlan { base_comp_choice, conn_target }
}

/// Generate the whole database onto `server`'s volume. Deterministic for a
/// given `seed`.
pub fn generate(server: &Server, params: &Oo7Params, seed: u64) -> QsResult<Oo7Db> {
    let mut modules = Vec::new();
    let mut total_pages = 0usize;
    for m in 0..params.num_modules {
        let handle = generate_module(server, params, seed, m)?;
        total_pages += handle.pages;
        modules.push(handle);
    }
    server.bulk_sync()?;
    Ok(Oo7Db { params: *params, modules, total_pages })
}

fn generate_module(
    server: &Server,
    p: &Oo7Params,
    seed: u64,
    module: usize,
) -> QsResult<ModuleHandle> {
    let plan = plan_randomness(p, seed, module);
    let n_assm = p.assemblies();
    let n_comp = p.num_comp_per_module;
    let n_atomic = p.num_atomic_per_comp;
    let n_conn = p.num_conn_per_atomic;
    let manual_chunks_n = p.manual_size.div_ceil(MANUAL_CHUNK);

    // ---- Phase A: assign object ids with the dry-run packer. -------------
    let first_pid = server.allocated_pages() as u32;
    let mut planner = Planner::new(first_pid);
    let assembly_oids: Vec<Oid> = (0..n_assm).map(|_| planner.place(assembly::SIZE)).collect();
    let mut comp_oids = Vec::with_capacity(n_comp);
    let mut doc_oids = Vec::with_capacity(n_comp);
    let mut atomic_oids: Vec<Vec<Oid>> = Vec::with_capacity(n_comp);
    let mut conn_oids: Vec<Vec<Oid>> = Vec::with_capacity(n_comp);
    for _c in 0..n_comp {
        comp_oids.push(planner.place(composite::SIZE));
        // Atomic parts immediately follow the composite object so the whole
        // atomic region clusters at the front of the cluster (the document
        // and connections are read but never updated by the T2 traversals).
        atomic_oids.push((0..n_atomic).map(|_| planner.place(atomic::SIZE)).collect());
        doc_oids.push(planner.place(p.document_size));
        conn_oids.push((0..n_atomic * n_conn).map(|_| planner.place(connection::SIZE)).collect());
    }
    let manual_oids: Vec<Oid> = (0..manual_chunks_n)
        .map(|i| {
            let sz = if i + 1 == manual_chunks_n {
                p.manual_size - (manual_chunks_n - 1) * MANUAL_CHUNK
            } else {
                MANUAL_CHUNK
            };
            planner.place(sz.max(8))
        })
        .collect();

    // ---- Phase B: materialize, placing objects in the identical order. ---
    let mut packer = Packer::new(server)?;
    debug_assert_eq!(packer.pid, PageId(first_pid));

    // Assemblies, level order. Node i's children are 3i+1 … 3i+3 in a
    // complete ternary tree laid out level by level.
    let complex_count = p.complex_assemblies();
    for i in 0..n_assm {
        let is_complex = i < complex_count;
        let parent = if i == 0 { Oid::NULL } else { assembly_oids[(i - 1) / 3] };
        let (subs, comps): (Vec<Oid>, Vec<Oid>) = if is_complex {
            ((0..3).map(|k| assembly_oids[3 * i + 1 + k]).collect(), Vec::new())
        } else {
            let base_idx = i - complex_count;
            (Vec::new(), plan.base_comp_choice[base_idx].iter().map(|&c| comp_oids[c]).collect())
        };
        let bytes = assembly::build(i as u32, is_complex, parent, &subs, &comps);
        let got = packer.place(&bytes)?;
        debug_assert_eq!(got, assembly_oids[i], "planner/packer divergence");
    }

    // Composite-part clusters.
    for c in 0..n_comp {
        // Incoming connections per atomic (keep up to 3, as the layout has
        // room for; the graph remains fully traversable via outgoing refs).
        let mut incoming: Vec<Vec<Oid>> = vec![Vec::new(); n_atomic];
        for i in 0..n_atomic {
            for k in 0..n_conn {
                let target = plan.conn_target[c][i][k];
                if incoming[target].len() < 3 {
                    incoming[target].push(conn_oids[c][i * n_conn + k]);
                }
            }
        }
        let comp_bytes =
            composite::build(c as u32, atomic_oids[c][0], doc_oids[c], &atomic_oids[c]);
        let got = packer.place(&comp_bytes)?;
        debug_assert_eq!(got, comp_oids[c]);
        for i in 0..n_atomic {
            let to: Vec<Oid> = (0..n_conn).map(|k| conn_oids[c][i * n_conn + k]).collect();
            let bytes = atomic::build((c * n_atomic + i) as u32, comp_oids[c], &to, &incoming[i]);
            let got = packer.place(&bytes)?;
            debug_assert_eq!(got, atomic_oids[c][i]);
        }
        let got = packer.place(&document::build(p.document_size, comp_oids[c]))?;
        debug_assert_eq!(got, doc_oids[c]);
        for i in 0..n_atomic {
            for k in 0..n_conn {
                let target = plan.conn_target[c][i][k];
                let bytes = connection::build(
                    atomic_oids[c][i],
                    atomic_oids[c][target],
                    ((i + k) % 100) as u32,
                );
                let got = packer.place(&bytes)?;
                debug_assert_eq!(got, conn_oids[c][i * n_conn + k]);
            }
        }
    }

    // Manual chunks.
    for (i, &oid) in manual_oids.iter().enumerate() {
        let sz = if i + 1 == manual_chunks_n {
            (p.manual_size - (manual_chunks_n - 1) * MANUAL_CHUNK).max(8)
        } else {
            MANUAL_CHUNK
        };
        let mut bytes = vec![b'm'; sz];
        let next = manual_oids.get(i + 1).copied().unwrap_or(Oid::NULL);
        crate::schema::put_ref(&mut bytes, 0, next);
        let got = packer.place(&bytes)?;
        debug_assert_eq!(got, oid);
    }
    packer.flush()?;

    Ok(ModuleHandle {
        index: module,
        root_assembly: assembly_oids[0],
        composite_parts: comp_oids,
        manual_chunks: manual_oids,
        pages: packer.pages_written,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_esm::{RecoveryFlavor, ServerConfig};
    use qs_sim::Meter;

    fn tiny_server() -> Server {
        Server::format(
            ServerConfig::new(RecoveryFlavor::EsmAries)
                .with_pool_mb(2.0)
                .with_volume_pages(2048)
                .with_log_mb(8.0),
            Meter::new(),
        )
        .unwrap()
    }

    #[test]
    fn tiny_db_generates_and_is_readable() {
        let server = tiny_server();
        let db = generate(&server, &Oo7Params::tiny(), 7).unwrap();
        assert_eq!(db.modules.len(), 2);
        assert!(db.total_pages > 0);
        // Root assembly is a complex assembly.
        let root = db.modules[0].root_assembly;
        let page = server.read_page_for_test(root.page).unwrap();
        let bytes = page.object(root.page, root.slot).unwrap();
        assert!(assembly::is_complex(bytes));
    }

    #[test]
    fn generation_is_deterministic() {
        let s1 = tiny_server();
        let s2 = tiny_server();
        let d1 = generate(&s1, &Oo7Params::tiny(), 42).unwrap();
        let d2 = generate(&s2, &Oo7Params::tiny(), 42).unwrap();
        assert_eq!(d1.total_pages, d2.total_pages);
        for pid in 0..d1.total_pages as u32 {
            let a = s1.read_page_for_test(PageId(pid)).unwrap();
            let b = s2.read_page_for_test(PageId(pid)).unwrap();
            assert_eq!(a.bytes()[..], b.bytes()[..], "page {pid}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let s1 = tiny_server();
        let s2 = tiny_server();
        generate(&s1, &Oo7Params::tiny(), 1).unwrap();
        generate(&s2, &Oo7Params::tiny(), 2).unwrap();
        let mut any_diff = false;
        for pid in 0..10u32 {
            let a = s1.read_page_for_test(PageId(pid)).unwrap();
            let b = s2.read_page_for_test(PageId(pid)).unwrap();
            if a.bytes()[..] != b.bytes()[..] {
                any_diff = true;
            }
        }
        assert!(any_diff);
    }

    #[test]
    fn composite_cluster_spans_more_than_one_page() {
        // The paper's T2A page-count argument requires a composite-part
        // cluster bigger than a page, so consecutive root parts land on
        // distinct pages.
        let p = Oo7Params::small();
        let cluster = composite::SIZE
            + p.document_size
            + p.num_atomic_per_comp * atomic::SIZE
            + p.num_atomic_per_comp * p.num_conn_per_atomic * connection::SIZE;
        assert!(cluster > qs_types::PAGE_SIZE, "cluster = {cluster}");
    }
}
