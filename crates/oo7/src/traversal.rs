//! The OO7 traversals used by the study (§4.2).
//!
//! All T2 variants perform a depth-first traversal of the assembly
//! hierarchy; at each base assembly they visit its three composite parts;
//! each composite-part visit does a depth-first search of the atomic-part
//! graph from the root part, following outgoing connections. They differ
//! only in what they update:
//!
//! * **T2A** — update the root atomic part of each composite part;
//! * **T2B** — update every atomic part;
//! * **T2C** — update every atomic part four times.
//!
//! Updates *increment* the (x, y) attributes rather than swapping them
//! (the paper's footnote 2): repeated updates keep changing the value, so
//! the diffing schemes always find a real difference.
//!
//! T1 is the read-only variant, used for validation and for the claim that
//! hardware-assisted recovery adds zero read-only overhead.

use crate::gen::ModuleHandle;
use crate::schema::{assembly, atomic, composite, connection};
use qs_types::{Oid, QsResult};
use quickstore::Store;
use std::collections::HashSet;
use std::sync::atomic::Ordering;

/// Which T2 variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum T2Mode {
    /// Sparse: root atomic part per composite part.
    A,
    /// Dense: every atomic part.
    B,
    /// Repeated: every atomic part, four times.
    C,
}

impl T2Mode {
    pub fn name(self) -> &'static str {
        match self {
            T2Mode::A => "T2A",
            T2Mode::B => "T2B",
            T2Mode::C => "T2C",
        }
    }
}

/// Read-only traversal. Returns the number of atomic parts visited.
pub fn t1(store: &mut Store, module: &ModuleHandle) -> QsResult<u64> {
    traverse(store, module, None)
}

/// Update traversal. Returns the number of update operations performed.
pub fn t2(store: &mut Store, module: &ModuleHandle, mode: T2Mode) -> QsResult<u64> {
    traverse(store, module, Some(mode))
}

fn traverse(store: &mut Store, module: &ModuleHandle, mode: Option<T2Mode>) -> QsResult<u64> {
    let mut count = 0u64;
    visit_assembly(store, module.root_assembly, mode, &mut count)?;
    Ok(count)
}

fn visit_assembly(
    store: &mut Store,
    oid: Oid,
    mode: Option<T2Mode>,
    count: &mut u64,
) -> QsResult<()> {
    store.meter().visits.fetch_add(1, Ordering::Relaxed);
    let bytes = store.read(oid)?;
    if assembly::is_complex(&bytes) {
        for sub in assembly::subs(&bytes, 3) {
            visit_assembly(store, sub, mode, count)?;
        }
    } else {
        for comp in assembly::comps(&bytes, 3) {
            visit_composite(store, comp, mode, count)?;
        }
    }
    Ok(())
}

fn visit_composite(
    store: &mut Store,
    comp: Oid,
    mode: Option<T2Mode>,
    count: &mut u64,
) -> QsResult<()> {
    store.meter().visits.fetch_add(1, Ordering::Relaxed);
    let bytes = store.read(comp)?;
    let root = composite::root_part(&bytes);
    // Depth-first search of the atomic graph, per composite-part visit.
    let mut seen: HashSet<Oid> = HashSet::new();
    let mut stack = vec![root];
    seen.insert(root);
    let mut first = true;
    while let Some(part) = stack.pop() {
        store.meter().visits.fetch_add(1, Ordering::Relaxed);
        let abytes = store.read(part)?;
        match mode {
            Some(T2Mode::A) if first => update_xy(store, part, &abytes, 1, count)?,
            Some(T2Mode::B) => update_xy(store, part, &abytes, 1, count)?,
            Some(T2Mode::C) => update_xy(store, part, &abytes, 4, count)?,
            _ => {
                if mode.is_none() {
                    *count += 1; // T1 counts visits
                }
            }
        }
        first = false;
        for conn in atomic::to_conns(&abytes, 3) {
            store.meter().visits.fetch_add(1, Ordering::Relaxed);
            let cbytes = store.read(conn)?;
            let target = connection::to_atomic(&cbytes);
            if seen.insert(target) {
                stack.push(target);
            }
        }
    }
    Ok(())
}

/// Increment (x, y) `times` times — each a separate in-place 8-byte write,
/// re-reading the current value as real application code would.
fn update_xy(
    store: &mut Store,
    part: Oid,
    first_image: &[u8],
    times: usize,
    count: &mut u64,
) -> QsResult<()> {
    let mut image = first_image.to_vec();
    for _ in 0..times {
        let new_xy = atomic::incremented_xy(&image);
        store.modify(part, atomic::OFF_X, &new_xy)?;
        image[atomic::OFF_X..atomic::OFF_X + 8].copy_from_slice(&new_xy);
        *count += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::params::Oo7Params;
    use qs_esm::{ClientConn, Server, ServerConfig};
    use qs_sim::Meter;
    use qs_types::ClientId;
    use quickstore::SystemConfig;
    use std::sync::Arc;

    fn tiny_store(cfg: SystemConfig) -> (Store, crate::gen::Oo7Db) {
        let meter = Meter::new();
        let server = Arc::new(
            Server::format(
                ServerConfig::new(cfg.flavor)
                    .with_pool_mb(2.0)
                    .with_volume_pages(2048)
                    .with_log_mb(16.0),
                Arc::clone(&meter),
            )
            .unwrap(),
        );
        let db = generate(&server, &Oo7Params::tiny(), 11).unwrap();
        let client = ClientConn::new(ClientId(0), server, cfg.client_pool_pages(), meter);
        (Store::new(client, cfg).unwrap(), db)
    }

    #[test]
    fn t1_visits_expected_number_of_atomics() {
        let (mut store, db) = tiny_store(SystemConfig::pd_esm().with_memory(2.0, 0.5));
        store.begin().unwrap();
        let visited = t1(&mut store, &db.modules[0]).unwrap();
        store.commit().unwrap();
        let p = Oo7Params::tiny();
        assert_eq!(visited as usize, p.atomic_visits_per_traversal());
        // Read-only: no faults beyond mapping, no log records at all.
        let s = store.meter().snapshot();
        assert_eq!(s.write_faults, 0);
        assert_eq!(s.log_records_generated, 0);
        assert_eq!(s.dirty_pages_shipped, 0);
        assert_eq!(s.updates, 0);
    }

    #[test]
    fn t2_update_counts_match_modes() {
        let p = Oo7Params::tiny();
        let per = p.atomic_visits_per_traversal() as u64;
        let comp_visits = p.comp_visits_per_traversal() as u64;
        for (mode, want) in [(T2Mode::A, comp_visits), (T2Mode::B, per), (T2Mode::C, 4 * per)] {
            let (mut store, db) = tiny_store(SystemConfig::pd_esm().with_memory(2.0, 0.5));
            store.begin().unwrap();
            let updates = t2(&mut store, &db.modules[0], mode).unwrap();
            store.commit().unwrap();
            assert_eq!(updates, want, "{}", mode.name());
            assert_eq!(store.meter().snapshot().updates, want);
        }
    }

    #[test]
    fn t2_increments_survive_across_transactions() {
        let (mut store, db) = tiny_store(SystemConfig::pd_esm().with_memory(2.0, 0.5));
        // Find one root atomic part and watch its x grow by 1 per T2A run.
        store.begin().unwrap();
        let comp0 = db.modules[0].composite_parts[0];
        let root = composite::root_part(&store.read(comp0).unwrap());
        let (x0, y0) = atomic::xy(&store.read(root).unwrap());
        store.commit().unwrap();
        for round in 1..=3u32 {
            store.begin().unwrap();
            t2(&mut store, &db.modules[0], T2Mode::A).unwrap();
            store.commit().unwrap();
            store.begin().unwrap();
            let (x, y) = atomic::xy(&store.read(root).unwrap());
            store.commit().unwrap();
            // Referenced possibly multiple times per traversal (duplicate
            // base-assembly references) — x grows by at least `round`.
            assert!(x >= x0 + round, "round {round}: x {x} vs {x0}");
            assert_eq!(x - x0, y - y0, "x and y increment in lockstep");
        }
    }

    #[test]
    fn t2b_same_updates_under_all_schemes() {
        let mut counts = Vec::new();
        for cfg in [
            SystemConfig::pd_esm().with_memory(2.0, 0.5),
            SystemConfig::sd_esm().with_memory(2.0, 0.5),
            SystemConfig::sl_esm().with_memory(2.0, 0.5),
            SystemConfig::pd_redo().with_memory(2.0, 0.5),
            SystemConfig::wpl().with_memory(2.0, 0.5),
        ] {
            let name = cfg.name();
            let (mut store, db) = tiny_store(cfg);
            store.begin().unwrap();
            let n = t2(&mut store, &db.modules[0], T2Mode::B).unwrap();
            store.commit().unwrap();
            counts.push((name, n));
        }
        let first = counts[0].1;
        for (name, n) in &counts {
            assert_eq!(*n, first, "{name}");
        }
    }

    #[test]
    fn t2c_performs_more_raw_updates_than_t2b() {
        let (mut store, db) = tiny_store(SystemConfig::pd_esm().with_memory(2.0, 0.5));
        store.begin().unwrap();
        let b = t2(&mut store, &db.modules[0], T2Mode::B).unwrap();
        store.commit().unwrap();
        store.begin().unwrap();
        let c = t2(&mut store, &db.modules[0], T2Mode::C).unwrap();
        store.commit().unwrap();
        assert_eq!(c, 4 * b);
        // But the same pages are dirtied, so diffing ships the same volume.
    }
}
