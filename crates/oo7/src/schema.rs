//! Fixed-layout persistent objects for OO7.
//!
//! Objects are flat byte records with embedded object references (the
//! unswizzled form of QuickStore's pointers). Sizes are chosen so module
//! footprints match Table 2 of the paper: an atomic part is 80 bytes, a
//! connection 150, a composite part 200, an assembly 120, a document 2000
//! — giving a small module of ≈6.6 MB and a big module of ≈25.0 MB
//! (within 2 % and 5 % of the paper's 6.6 / 24.3 MB). Keeping atomic parts
//! small also keeps a composite part's *atomic region* (20 × 80 = 1.6 KB)
//! inside one page almost always, so T2B's dirty set (~500–600 pages)
//! matches the paper's Figure 9 scale and fits the 4 MB recovery buffer in
//! the unconstrained experiments, as it did for the authors.

use qs_types::{Oid, PageId};

/// Encoded size of an object reference: page (4) + slot (2) + pad (2).
pub const REF_SIZE: usize = 8;

/// Serialize an object reference.
pub fn put_ref(buf: &mut [u8], at: usize, oid: Oid) {
    buf[at..at + 4].copy_from_slice(&oid.page.0.to_le_bytes());
    buf[at + 4..at + 6].copy_from_slice(&oid.slot.to_le_bytes());
    buf[at + 6..at + 8].copy_from_slice(&0u16.to_le_bytes());
}

/// Deserialize an object reference.
pub fn get_ref(buf: &[u8], at: usize) -> Oid {
    let page = PageId(u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()));
    let slot = u16::from_le_bytes(buf[at + 4..at + 6].try_into().unwrap());
    Oid { page, slot }
}

pub fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

pub fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

/// Atomic part: the unit the T2 traversals update.
pub mod atomic {
    use super::*;

    pub const SIZE: usize = 80;
    pub const OFF_ID: usize = 0;
    /// `x` then `y` are adjacent; a T2 update increments both with one
    /// 8-byte in-place write.
    pub const OFF_X: usize = 4;
    pub const OFF_Y: usize = 8;
    pub const OFF_BUILD_DATE: usize = 12;
    pub const OFF_PARTOF: usize = 16;
    /// Outgoing connection references (NumConnPerAtomic = 3).
    pub const OFF_TO: usize = 24;
    /// Incoming connection references.
    pub const OFF_FROM: usize = 48;
    // 72..80: padding.

    pub fn build(id: u32, partof: Oid, to: &[Oid], from: &[Oid]) -> Vec<u8> {
        let mut b = vec![0u8; SIZE];
        put_u32(&mut b, OFF_ID, id);
        put_u32(&mut b, OFF_X, id);
        put_u32(&mut b, OFF_Y, id.wrapping_add(1));
        put_u32(&mut b, OFF_BUILD_DATE, 19_950_522);
        put_ref(&mut b, OFF_PARTOF, partof);
        for (i, &o) in to.iter().enumerate().take(3) {
            put_ref(&mut b, OFF_TO + i * REF_SIZE, o);
        }
        for (i, &o) in from.iter().enumerate().take(3) {
            put_ref(&mut b, OFF_FROM + i * REF_SIZE, o);
        }
        b
    }

    pub fn to_conns(buf: &[u8], n: usize) -> Vec<Oid> {
        (0..n).map(|i| get_ref(buf, OFF_TO + i * REF_SIZE)).collect()
    }

    pub fn xy(buf: &[u8]) -> (u32, u32) {
        (get_u32(buf, OFF_X), get_u32(buf, OFF_Y))
    }

    /// The 8-byte little-endian image of incremented (x, y).
    pub fn incremented_xy(buf: &[u8]) -> [u8; 8] {
        let (x, y) = xy(buf);
        let mut out = [0u8; 8];
        out[0..4].copy_from_slice(&x.wrapping_add(1).to_le_bytes());
        out[4..8].copy_from_slice(&y.wrapping_add(1).to_le_bytes());
        out
    }
}

/// Connection: interposed between each pair of connected atomic parts.
pub mod connection {
    use super::*;

    pub const SIZE: usize = 150;
    pub const OFF_FROM: usize = 0;
    pub const OFF_TO: usize = 8;
    pub const OFF_LENGTH: usize = 16;
    // 20.. : type + padding.

    pub fn build(from: Oid, to: Oid, length: u32) -> Vec<u8> {
        let mut b = vec![0u8; SIZE];
        put_ref(&mut b, OFF_FROM, from);
        put_ref(&mut b, OFF_TO, to);
        put_u32(&mut b, OFF_LENGTH, length);
        b[20..30].copy_from_slice(b"connection");
        b
    }

    pub fn to_atomic(buf: &[u8]) -> Oid {
        get_ref(buf, OFF_TO)
    }
}

/// Composite part: a design primitive owning an atomic-part graph + document.
pub mod composite {
    use super::*;

    pub const SIZE: usize = 200;
    pub const OFF_ID: usize = 0;
    pub const OFF_BUILD_DATE: usize = 4;
    pub const OFF_ROOT: usize = 8;
    pub const OFF_DOC: usize = 16;
    /// Up to 20 atomic-part references.
    pub const OFF_PARTS: usize = 24;

    pub fn build(id: u32, root: Oid, doc: Oid, parts: &[Oid]) -> Vec<u8> {
        assert!(parts.len() <= 20, "composite layout holds 20 part refs");
        let mut b = vec![0u8; SIZE];
        put_u32(&mut b, OFF_ID, id);
        put_u32(&mut b, OFF_BUILD_DATE, 19_950_522);
        put_ref(&mut b, OFF_ROOT, root);
        put_ref(&mut b, OFF_DOC, doc);
        for (i, &o) in parts.iter().enumerate() {
            put_ref(&mut b, OFF_PARTS + i * REF_SIZE, o);
        }
        b
    }

    pub fn root_part(buf: &[u8]) -> Oid {
        get_ref(buf, OFF_ROOT)
    }
}

/// Assembly: a node of the assembly hierarchy.
pub mod assembly {
    use super::*;

    pub const SIZE: usize = 120;
    pub const OFF_ID: usize = 0;
    pub const OFF_KIND: usize = 4; // 0 = base, 1 = complex
    pub const OFF_PARENT: usize = 8;
    /// Complex assemblies: references to 3 sub-assemblies.
    pub const OFF_SUB: usize = 16;
    /// Base assemblies: references to 3 composite parts.
    pub const OFF_COMP: usize = 40;

    pub fn build(id: u32, complex: bool, parent: Oid, subs: &[Oid], comps: &[Oid]) -> Vec<u8> {
        let mut b = vec![0u8; SIZE];
        put_u32(&mut b, OFF_ID, id);
        put_u32(&mut b, OFF_KIND, complex as u32);
        put_ref(&mut b, OFF_PARENT, parent);
        for (i, &o) in subs.iter().enumerate().take(3) {
            put_ref(&mut b, OFF_SUB + i * REF_SIZE, o);
        }
        for (i, &o) in comps.iter().enumerate().take(3) {
            put_ref(&mut b, OFF_COMP + i * REF_SIZE, o);
        }
        b
    }

    pub fn is_complex(buf: &[u8]) -> bool {
        get_u32(buf, OFF_KIND) == 1
    }

    pub fn subs(buf: &[u8], n: usize) -> Vec<Oid> {
        (0..n).map(|i| get_ref(buf, OFF_SUB + i * REF_SIZE)).collect()
    }

    pub fn comps(buf: &[u8], n: usize) -> Vec<Oid> {
        (0..n).map(|i| get_ref(buf, OFF_COMP + i * REF_SIZE)).collect()
    }
}

/// Document: per-composite-part text blob (2000 bytes in both databases).
pub mod document {
    use super::*;

    pub fn build(size: usize, comp: Oid) -> Vec<u8> {
        let mut b = vec![b'.'; size];
        put_ref(&mut b, 0, comp);
        let text = b"document text for composite part ";
        let n = text.len().min(size.saturating_sub(REF_SIZE));
        b[REF_SIZE..REF_SIZE + n].copy_from_slice(&text[..n]);
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_round_trip() {
        let mut b = vec![0u8; 16];
        let oid = Oid::new(PageId(123456), 42);
        put_ref(&mut b, 8, oid);
        assert_eq!(get_ref(&b, 8), oid);
    }

    #[test]
    fn atomic_layout() {
        let partof = Oid::new(PageId(1), 0);
        let to = vec![Oid::new(PageId(2), 1), Oid::new(PageId(2), 2), Oid::new(PageId(2), 3)];
        let a = atomic::build(7, partof, &to, &[]);
        assert_eq!(a.len(), atomic::SIZE);
        assert_eq!(get_u32(&a, atomic::OFF_ID), 7);
        assert_eq!(atomic::xy(&a), (7, 8));
        assert_eq!(atomic::to_conns(&a, 3), to);
        let inc = atomic::incremented_xy(&a);
        assert_eq!(u32::from_le_bytes(inc[0..4].try_into().unwrap()), 8);
        assert_eq!(u32::from_le_bytes(inc[4..8].try_into().unwrap()), 9);
    }

    #[test]
    fn x_and_y_are_adjacent_words() {
        // The T2 update is one 8-byte write at OFF_X; the diff algorithm
        // then produces a single 16-byte-image log record.
        assert_eq!(atomic::OFF_Y, atomic::OFF_X + 4);
    }

    #[test]
    fn assembly_kinds() {
        let base = assembly::build(1, false, Oid::NULL, &[], &[Oid::new(PageId(5), 0)]);
        assert!(!assembly::is_complex(&base));
        assert_eq!(assembly::comps(&base, 1)[0], Oid::new(PageId(5), 0));
        let complex = assembly::build(2, true, Oid::NULL, &[Oid::new(PageId(9), 3)], &[]);
        assert!(assembly::is_complex(&complex));
        assert_eq!(assembly::subs(&complex, 1)[0], Oid::new(PageId(9), 3));
    }

    #[test]
    fn composite_and_connection_round_trip() {
        let root = Oid::new(PageId(3), 1);
        let c = composite::build(9, root, Oid::NULL, &[root]);
        assert_eq!(composite::root_part(&c), root);
        let conn = connection::build(Oid::new(PageId(1), 1), Oid::new(PageId(2), 2), 55);
        assert_eq!(connection::to_atomic(&conn), Oid::new(PageId(2), 2));
    }

    #[test]
    fn module_size_arithmetic_matches_table2() {
        // Small module ≈ 6.6 MB, big ≈ 24.3 MB (Table 2). Our layouts land
        // within 6 % of both.
        let p = crate::params::Oo7Params::small();
        let per_comp = composite::SIZE
            + p.document_size
            + p.num_atomic_per_comp * atomic::SIZE
            + p.num_atomic_per_comp * p.num_conn_per_atomic * connection::SIZE;
        let small_module =
            p.num_comp_per_module * per_comp + p.assemblies() * assembly::SIZE + p.manual_size;
        let small_mb = small_module as f64 / (1024.0 * 1024.0);
        assert!((small_mb - 6.6).abs() < 0.4, "small module {small_mb:.2} MB");

        let b = crate::params::Oo7Params::big();
        let big_module =
            b.num_comp_per_module * per_comp + b.assemblies() * assembly::SIZE + b.manual_size;
        let big_mb = big_module as f64 / (1024.0 * 1024.0);
        assert!((big_mb - 24.3).abs() < 1.5, "big module {big_mb:.2} MB");
    }
}
