//! OO7 database parameters (paper Table 1).

/// Which of the study's two databases to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbSize {
    /// Module ≈ 6.6 MB; whole database (5 modules) ≈ 33 MB — fits in both
    /// client (12 MB/module) and server (36 MB) memory.
    Small,
    /// Module ≈ 24.3 MB; database ≈ 121.5 MB — bigger than any client's
    /// memory, and bigger than the server's when several clients run.
    Big,
}

/// Table 1: the knobs of the OO7 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Oo7Params {
    pub num_atomic_per_comp: usize,
    pub num_conn_per_atomic: usize,
    pub document_size: usize,
    pub manual_size: usize,
    pub num_comp_per_module: usize,
    pub num_assm_per_assm: usize,
    pub num_assm_levels: usize,
    pub num_comp_per_assm: usize,
    pub num_modules: usize,
}

impl Oo7Params {
    pub fn small() -> Oo7Params {
        Oo7Params {
            num_atomic_per_comp: 20,
            num_conn_per_atomic: 3,
            document_size: 2000,
            manual_size: 100 * 1024,
            num_comp_per_module: 500,
            num_assm_per_assm: 3,
            num_assm_levels: 7,
            num_comp_per_assm: 3,
            num_modules: 5,
        }
    }

    pub fn big() -> Oo7Params {
        Oo7Params { num_comp_per_module: 2000, num_assm_levels: 8, ..Self::small() }
    }

    pub fn of(size: DbSize) -> Oo7Params {
        match size {
            DbSize::Small => Self::small(),
            DbSize::Big => Self::big(),
        }
    }

    /// A scaled-down parameter set for fast tests (not part of the paper).
    pub fn tiny() -> Oo7Params {
        Oo7Params {
            num_atomic_per_comp: 5,
            num_conn_per_atomic: 3,
            document_size: 200,
            manual_size: 2048,
            num_comp_per_module: 10,
            num_assm_per_assm: 3,
            num_assm_levels: 3,
            num_comp_per_assm: 3,
            num_modules: 2,
        }
    }

    /// Base assemblies per module: the bottom level of the hierarchy.
    pub fn base_assemblies(&self) -> usize {
        self.num_assm_per_assm.pow(self.num_assm_levels as u32 - 1)
    }

    /// Complex assemblies per module (all levels above the base).
    pub fn complex_assemblies(&self) -> usize {
        let mut total = 0;
        for level in 0..self.num_assm_levels - 1 {
            total += self.num_assm_per_assm.pow(level as u32);
        }
        total
    }

    /// Total assemblies per module.
    pub fn assemblies(&self) -> usize {
        self.base_assemblies() + self.complex_assemblies()
    }

    /// Composite-part *visits* one T2 traversal performs (base assemblies ×
    /// references per base; duplicates included, as in OO7).
    pub fn comp_visits_per_traversal(&self) -> usize {
        self.base_assemblies() * self.num_comp_per_assm
    }

    /// Atomic-part visits per traversal (each composite-part visit does a
    /// full DFS of its atomic graph).
    pub fn atomic_visits_per_traversal(&self) -> usize {
        self.comp_visits_per_traversal() * self.num_atomic_per_comp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let s = Oo7Params::small();
        assert_eq!(s.num_comp_per_module, 500);
        assert_eq!(s.num_assm_levels, 7);
        assert_eq!(s.num_modules, 5);
        assert_eq!(s.document_size, 2000);
        let b = Oo7Params::big();
        assert_eq!(b.num_comp_per_module, 2000);
        assert_eq!(b.num_assm_levels, 8);
        assert_eq!(b.num_atomic_per_comp, s.num_atomic_per_comp);
    }

    #[test]
    fn assembly_counts() {
        let s = Oo7Params::small();
        assert_eq!(s.base_assemblies(), 729); // 3^6
        assert_eq!(s.complex_assemblies(), 364); // 3^0 + … + 3^5
        assert_eq!(s.assemblies(), 1093);
        let b = Oo7Params::big();
        assert_eq!(b.base_assemblies(), 2187); // 3^7
        assert_eq!(b.assemblies(), 2187 + 1093);
    }

    #[test]
    fn traversal_visit_counts() {
        let s = Oo7Params::small();
        assert_eq!(s.comp_visits_per_traversal(), 2187);
        assert_eq!(s.atomic_visits_per_traversal(), 43_740);
        let b = Oo7Params::big();
        assert_eq!(b.comp_visits_per_traversal(), 6561);
    }
}
